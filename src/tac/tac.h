// Three-address-code (TAC) intermediate representation for user-defined
// functions. Section 5 of the paper performs static code analysis over "typed
// three-address code" with a record API (getField / setField / copy and
// default constructors / emit). We implement that IR directly: a UDF written
// in this IR is both *executable* (src/interp) and *analyzable* (src/sca),
// which lets property tests validate end-to-end that every reordering the
// analysis admits is output-preserving.
//
// Register model: a single space of virtual registers, each either a value
// register (holds a Value) or a record register (holds a Record). The
// verifier checks type consistency.

#ifndef BLACKBOX_TAC_TAC_H_
#define BLACKBOX_TAC_TAC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace blackbox {
namespace tac {

enum class Opcode {
  // Constants.
  kConstInt,     // dst := imm_int
  kConstDouble,  // dst := imm_double
  kConstStr,     // dst := imm_str
  kConstNull,    // dst := null

  // Value moves and arithmetic (int/int -> int, otherwise double).
  kMove,  // dst := src0
  kAdd,   // dst := src0 + src1
  kSub,   // dst := src0 - src1
  kMul,   // dst := src0 * src1
  kDiv,   // dst := src0 / src1
  kMod,   // dst := src0 % src1 (integers)
  kNeg,   // dst := -src0

  // Comparisons produce int 0/1.
  kCmpLt,
  kCmpLe,
  kCmpGt,
  kCmpGe,
  kCmpEq,
  kCmpNe,

  // Boolean logic over int 0/1.
  kAnd,
  kOr,
  kNot,

  // String helpers (used by the text-mining workload UDFs).
  kStrLen,       // dst := len(src0)
  kStrConcat,    // dst := src0 + src1
  kStrContains,  // dst := src0 contains src1 ? 1 : 0
  kStrHashMod,   // dst := hash(src0) % imm_int  (deterministic "classifier")

  // Control flow.
  kGoto,           // goto target
  kBranchIfTrue,   // if src0 != 0 goto target
  kBranchIfFalse,  // if src0 == 0 goto target
  kReturn,         // end of UDF invocation

  // Record API (the paper's assumed API, Section 5).
  kGetField,       // dst := getField(rec src0, index)
  kSetField,       // setField(rec dst, index, src0)
  kCopyRecord,     // rec dst := new OutputRecord(rec src0)   [implicit copy]
  kNewRecord,      // rec dst := new OutputRecord()           [implicit projection]
  kConcatRecords,  // rec dst := new OutputRecord(rec src0, rec src1)
  kEmit,           // emit(rec src0)

  // Input access. RAT UDFs read the single record of an input; KAT UDFs
  // iterate over a key group.
  kInputRecord,  // rec dst := the only record of input imm_int  (RAT)
  kInputCount,   // dst := |group of input imm_int|              (KAT)
  kInputAt,      // rec dst := group(input imm_int)[src0]        (KAT)

  // Specialized chain-input access (DESIGN.md §2.6). Only emitted by the
  // chain fuser (src/tac/fuse): dst := field imm_int of the chain's current
  // input row, where imm_int is a *global* attribute position (already
  // translated — no FieldTranslation is applied). Reads go through the
  // batch's lazy ColumnView, so only the fields a fused program actually
  // names are ever materialized. Out-of-range positions yield Null, exactly
  // like kGetField. Executing it outside Interpreter::RunFusedChain is an
  // internal error.
  kGetInputField,

  // Simulated CPU work (calibrated cost of e.g. an NLP component). The
  // interpreter spins imm_int work units; SCA ignores it (no data effect).
  kCpuBurn,
};

/// Returns the mnemonic for an opcode (used by the pretty-printer).
const char* OpcodeName(Opcode op);

/// One TAC instruction. Field-index operands of kGetField / kSetField are
/// either a static literal (index_is_reg == false, value in imm_int) or a
/// register (index_is_reg == true, register in src1) — the latter models the
/// "computed field index" case the paper's SCA must treat conservatively.
struct Instr {
  Opcode op;
  int dst = -1;   // destination register (value or record), -1 if none
  int src0 = -1;  // first source register
  int src1 = -1;  // second source register (or index register, see above)
  int64_t imm_int = 0;
  double imm_double = 0.0;
  std::string imm_str;
  int target = -1;  // branch target: instruction index
  bool index_is_reg = false;

  std::string ToString(int label) const;
};

enum class RegType { kUnknown = 0, kValue, kRecord };

/// UDF invocation style: record-at-a-time (Map, Cross, Match) vs.
/// key-at-a-time (Reduce, CoGroup) — §2.3.
enum class UdfKind { kRat, kKat };

/// A verified TAC function: the imperative first-order UDF of one operator.
class Function {
 public:
  const std::string& name() const { return name_; }
  int num_inputs() const { return num_inputs_; }
  UdfKind kind() const { return kind_; }
  int num_registers() const { return static_cast<int>(reg_types_.size()); }
  RegType reg_type(int reg) const { return reg_types_[reg]; }

  const std::vector<Instr>& instrs() const { return instrs_; }

  /// Disassembly with instruction labels, in the style of the paper's §3
  /// listings.
  std::string ToString() const;

 private:
  friend class FunctionBuilder;

  std::string name_;
  int num_inputs_ = 1;
  UdfKind kind_ = UdfKind::kRat;
  std::vector<Instr> instrs_;
  std::vector<RegType> reg_types_;
};

/// Opaque register handle produced by the builder.
struct Reg {
  int id = -1;
};

/// Opaque label handle for branch targets.
struct Label {
  int id = -1;
};

/// Fluent builder for TAC functions. Typical use:
///
///   FunctionBuilder b("filter_positive", /*num_inputs=*/1, UdfKind::kRat);
///   Reg ir = b.InputRecord(0);
///   Reg a = b.GetField(ir, 0);
///   Label skip = b.NewLabel();
///   b.BranchIfFalse(b.CmpGe(a, b.ConstInt(0)), skip);
///   Reg out = b.Copy(ir);
///   b.Emit(out);
///   b.Bind(skip);
///   b.Return();
///   StatusOr<Function> f = b.Build();
class FunctionBuilder {
 public:
  FunctionBuilder(std::string name, int num_inputs, UdfKind kind);

  // --- Input access ---
  Reg InputRecord(int input);          // RAT
  Reg InputCount(int input);           // KAT
  Reg InputAt(int input, Reg pos);     // KAT

  // --- Constants ---
  Reg ConstInt(int64_t v);
  Reg ConstDouble(double v);
  Reg ConstStr(std::string v);
  Reg ConstNull();

  // --- Arithmetic / comparison / logic ---
  Reg Move(Reg a);
  /// In-place update dst := dst + src — loop-carried accumulators (TAC has no
  /// phi nodes; loop state lives in a fixed register redefined per iteration).
  void AccumAdd(Reg dst, Reg src);
  /// In-place assignment dst := src.
  void Assign(Reg dst, Reg src);
  Reg Add(Reg a, Reg b);
  Reg Sub(Reg a, Reg b);
  Reg Mul(Reg a, Reg b);
  Reg Div(Reg a, Reg b);
  Reg Mod(Reg a, Reg b);
  Reg Neg(Reg a);
  Reg CmpLt(Reg a, Reg b);
  Reg CmpLe(Reg a, Reg b);
  Reg CmpGt(Reg a, Reg b);
  Reg CmpGe(Reg a, Reg b);
  Reg CmpEq(Reg a, Reg b);
  Reg CmpNe(Reg a, Reg b);
  Reg And(Reg a, Reg b);
  Reg Or(Reg a, Reg b);
  Reg Not(Reg a);
  Reg StrLen(Reg a);
  Reg StrConcat(Reg a, Reg b);
  Reg StrContains(Reg a, Reg b);
  Reg StrHashMod(Reg a, int64_t mod);

  // --- Record API ---
  Reg GetField(Reg rec, int index);
  /// Fused-chain input access: dst := field `pos` (a global attribute
  /// position) of the current chain-input row. Fuser-only; see kGetInputField.
  Reg GetInputField(int pos);
  Reg GetFieldDyn(Reg rec, Reg index);  // computed index (SCA-opaque)
  void SetField(Reg rec, int index, Reg value);
  void SetFieldDyn(Reg rec, Reg index, Reg value);
  Reg Copy(Reg rec);     // implicit copy constructor
  Reg NewRecord();       // implicit projection constructor
  Reg Concat(Reg a, Reg b);
  void Emit(Reg rec);

  // --- Control flow ---
  Label NewLabel();
  void Bind(Label label);
  void Goto(Label label);
  void BranchIfTrue(Reg cond, Label label);
  void BranchIfFalse(Reg cond, Label label);
  void Return();
  void CpuBurn(int64_t units);

  /// Number of instructions pushed so far. The chain fuser uses it to bound
  /// the size of a fused body (tail duplication can blow up) and to place
  /// labels relative to the preamble.
  int num_instrs() const { return static_cast<int>(fn_.instrs_.size()); }

  /// Finalizes and verifies the function: all labels bound, branch targets in
  /// range, register types consistent, final instruction path returns.
  StatusOr<Function> Build();

 private:
  Reg NewReg(RegType type);
  void Push(Instr instr);
  Status Verify() const;

  Function fn_;
  std::vector<int> label_positions_;          // label id -> instr index (-1 unbound)
  std::vector<std::pair<int, int>> fixups_;   // (instr index, label id)
  bool built_ = false;
};

}  // namespace tac
}  // namespace blackbox

#endif  // BLACKBOX_TAC_TAC_H_
