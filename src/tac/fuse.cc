#include "tac/fuse.h"

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "record/value.h"

namespace blackbox {
namespace tac {
namespace {

/// Mirrors the interpreter's truthiness (interp.cc ValueAsBool) so branches
/// on pooled constants fold to exactly the side the interpreter would take.
bool ConstTruth(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
      return v.AsInt() != 0;
    case ValueType::kDouble:
      return v.AsDouble() != 0.0;
    case ValueType::kNull:
      return false;
    case ValueType::kString:
      return !v.AsString().empty();
  }
  return false;
}

/// Bound on the fused body: tail duplication is exponential in the worst
/// case, so past this point fusion gives up and the chain runs staged.
constexpr int kMaxFusedBodyInstrs = 4096;

/// A record value known symbolically: a base (the chain-input row, or an
/// empty output record — both read as Null where not overridden, the input
/// row additionally serving real fields) plus per-global-position overrides
/// holding the fused register that computed the stored value.
struct SymRec {
  bool from_chain_input = false;
  std::map<int, int> overrides;  // global position -> fused value register
};

/// One stage record slot: the symbolic record plus which of the stage's two
/// field maps translates local indices for it (kInputRecord-loaded slots use
/// the input map, constructed records the output map; copies inherit).
struct SlotRec {
  bool input_prov = false;
  SymRec sym;
};

/// Per-stage symbolic environment: stage register -> fused register (values,
/// -1 = never written, which reads as Null) / symbolic record (records,
/// nullopt = never written, which makes fusion bail).
struct Env {
  std::vector<int> vals;
  std::vector<std::optional<SlotRec>> recs;
};

/// One stage activation on the in-flight path: an emit at stage s pushes a
/// frame for stage s+1 and resumes s after the emit when s+1's program
/// returns — the inlined analogue of the staged handoff.
struct Frame {
  int stage = 0;
  int pc = 0;
  SymRec input;  // what this stage's kInputRecord loads
  Env env;
};

/// The full state of one control-flow path being compiled. Copied at every
/// non-folded branch (tail duplication). input_field_regs caches
/// kGetInputField results per path — it must NOT be shared across paths,
/// because a register materialized on one path is never written on another,
/// and the workspace is not reset between records.
struct PathState {
  std::vector<Frame> frames;
  std::map<int, int> input_field_regs;  // global position -> fused register
};

class Fuser {
 public:
  Fuser(const std::vector<FuseStage>& stages, int global_width,
        const std::vector<int>* sink_positions)
      : stages_(stages),
        width_(global_width),
        sink_(sink_positions),
        b_("fused_chain", /*num_inputs=*/1, UdfKind::kRat) {}

  std::optional<FusedChainProgram> Fuse() {
    if (stages_.empty() || width_ <= 0) return std::nullopt;
    int64_t staged_instrs = 0;
    for (const FuseStage& s : stages_) {
      if (s.fn == nullptr || s.fn->kind() != UdfKind::kRat ||
          s.fn->num_inputs() != 1) {
        return std::nullopt;
      }
      staged_instrs += static_cast<int64_t>(s.fn->instrs().size());
    }
    BuildPreamble();
    body_start_ = b_.num_instrs();
    end_ = b_.NewLabel();

    PathState p;
    p.frames.push_back(MakeFrame(0, SymRec{/*from_chain_input=*/true, {}}));
    if (!CompilePath(std::move(p))) return std::nullopt;
    b_.Bind(end_);

    StatusOr<Function> fn = b_.Build();
    if (!fn.ok()) return std::nullopt;
    FusedChainProgram out;
    int body = static_cast<int>(fn->instrs().size()) - body_start_;
    out.fn = std::move(*fn);
    out.body_start = body_start_;
    out.input_reads.assign(input_reads_.begin(), input_reads_.end());
    out.static_saved_per_record =
        staged_instrs > body ? staged_instrs - body : 0;
    return out;
  }

 private:
  using Op = Opcode;

  /// Pools every constant any stage mentions (plus one Null) into a preamble
  /// executed once per chain runner. Pooling up front keeps all constant
  /// definitions ahead of the body regardless of which path first uses them.
  void BuildPreamble() {
    null_reg_ = b_.ConstNull().id;
    const_vals_.emplace(null_reg_, Value::Null());
    for (const FuseStage& s : stages_) {
      for (const Instr& i : s.fn->instrs()) {
        switch (i.op) {
          case Op::kConstInt:
            if (!int_pool_.count(i.imm_int)) {
              int r = b_.ConstInt(i.imm_int).id;
              int_pool_.emplace(i.imm_int, r);
              const_vals_.emplace(r, Value(i.imm_int));
            }
            break;
          case Op::kConstDouble: {
            uint64_t bits = 0;
            std::memcpy(&bits, &i.imm_double, sizeof(bits));
            if (!dbl_pool_.count(bits)) {
              int r = b_.ConstDouble(i.imm_double).id;
              dbl_pool_.emplace(bits, r);
              const_vals_.emplace(r, Value(i.imm_double));
            }
            break;
          }
          case Op::kConstStr:
            if (!str_pool_.count(i.imm_str)) {
              int r = b_.ConstStr(i.imm_str).id;
              str_pool_.emplace(i.imm_str, r);
              const_vals_.emplace(r, Value(i.imm_str));
            }
            break;
          default:
            break;
        }
      }
    }
  }

  Frame MakeFrame(int stage, SymRec input) const {
    Frame f;
    f.stage = stage;
    f.input = std::move(input);
    size_t n = static_cast<size_t>(stages_[stage].fn->num_registers());
    f.env.vals.assign(n, -1);
    f.env.recs.assign(n, std::nullopt);
    return f;
  }

  /// Fused register holding stage value register `reg` on this path; a
  /// never-written register reads as Null, exactly like the interpreter's
  /// value-initialized workspace.
  int ValReg(const Env& env, int reg) const {
    int v = env.vals[reg];
    return v < 0 ? null_reg_ : v;
  }

  /// Applies one of the stage's field maps exactly as the interpreter's
  /// input_pos/output_pos would: nullptr = identity, otherwise a strict
  /// range-checked lookup (-1 when out of range).
  static int TranslateLocal(const std::vector<int>* map, int local) {
    if (map == nullptr) return local;
    if (local < 0 || local >= static_cast<int>(map->size())) return -1;
    return (*map)[local];
  }

  int MapLocal(int stage, bool input_prov, int local) const {
    const FuseStage& s = stages_[stage];
    return TranslateLocal(input_prov ? s.input_map : s.output_map, local);
  }

  /// The fused register for global position `g` of a symbolic record.
  int FieldValue(PathState* p, const SymRec& sym, int g) {
    if (g < 0) return null_reg_;
    auto ov = sym.overrides.find(g);
    if (ov != sym.overrides.end()) return ov->second;
    if (!sym.from_chain_input) return null_reg_;
    auto it = p->input_field_regs.find(g);
    if (it != p->input_field_regs.end()) return it->second;
    int r = b_.GetInputField(g).id;
    p->input_field_regs.emplace(g, r);
    input_reads_.insert(g);
    return r;
  }

  int EmitBinOp(Op op, int a, int c) {
    Reg x{a}, y{c};
    switch (op) {
      case Op::kAdd: return b_.Add(x, y).id;
      case Op::kSub: return b_.Sub(x, y).id;
      case Op::kMul: return b_.Mul(x, y).id;
      case Op::kDiv: return b_.Div(x, y).id;
      case Op::kMod: return b_.Mod(x, y).id;
      case Op::kCmpLt: return b_.CmpLt(x, y).id;
      case Op::kCmpLe: return b_.CmpLe(x, y).id;
      case Op::kCmpGt: return b_.CmpGt(x, y).id;
      case Op::kCmpGe: return b_.CmpGe(x, y).id;
      case Op::kCmpEq: return b_.CmpEq(x, y).id;
      case Op::kCmpNe: return b_.CmpNe(x, y).id;
      case Op::kAnd: return b_.And(x, y).id;
      case Op::kOr: return b_.Or(x, y).id;
      case Op::kStrConcat: return b_.StrConcat(x, y).id;
      case Op::kStrContains: return b_.StrContains(x, y).id;
      default: return -1;
    }
  }

  /// Materializes one emitted record at the chain boundary. Sink chains
  /// project straight into the sink layout (byte-identical to the engine's
  /// ProjectToSinkSchema, which SetFields every position of a fresh record);
  /// statically-null stores are elided because kNewRecord pre-sizes the
  /// record with nulls. Non-sink chains rebuild the full-width row; there
  /// every override must be stored — a null store can both overwrite a real
  /// input value and grow the record, which the staged path also does.
  void EmitBoundary(PathState* p, const SymRec& sym) {
    if (sink_ != nullptr) {
      Reg out = b_.NewRecord();
      for (size_t j = 0; j < sink_->size(); ++j) {
        int r = FieldValue(p, sym, (*sink_)[j]);
        if (r != null_reg_) b_.SetField(out, static_cast<int>(j), Reg{r});
      }
      b_.Emit(out);
      return;
    }
    Reg out = sym.from_chain_input ? b_.InputRecord(0) : b_.NewRecord();
    for (const auto& [g, r] : sym.overrides) b_.SetField(out, g, Reg{r});
    b_.Emit(out);
  }

  /// Compiles every control-flow suffix reachable from `p`, emitting one
  /// linear run per path and recursing at each unfolded branch. Returns
  /// false to abandon fusion (unsupported construct or body too large).
  bool CompilePath(PathState p) {
    while (!p.frames.empty()) {
      if (b_.num_instrs() - body_start_ > kMaxFusedBodyInstrs) return false;
      Frame& f = p.frames.back();
      const std::vector<Instr>& instrs = stages_[f.stage].fn->instrs();
      if (f.pc >= static_cast<int>(instrs.size())) {
        p.frames.pop_back();
        continue;
      }
      const Instr& i = instrs[f.pc];
      int pc = f.pc;
      f.pc = pc + 1;
      switch (i.op) {
        case Op::kConstInt:
          f.env.vals[i.dst] = int_pool_.at(i.imm_int);
          break;
        case Op::kConstDouble: {
          uint64_t bits = 0;
          std::memcpy(&bits, &i.imm_double, sizeof(bits));
          f.env.vals[i.dst] = dbl_pool_.at(bits);
          break;
        }
        case Op::kConstStr:
          f.env.vals[i.dst] = str_pool_.at(i.imm_str);
          break;
        case Op::kConstNull:
          f.env.vals[i.dst] = null_reg_;
          break;
        case Op::kMove:
          // Pure register aliasing: no fused instruction, and constant-ness
          // propagates through const_vals_ keyed by the fused register.
          f.env.vals[i.dst] = ValReg(f.env, i.src0);
          break;
        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
        case Op::kDiv:
        case Op::kMod:
        case Op::kCmpLt:
        case Op::kCmpLe:
        case Op::kCmpGt:
        case Op::kCmpGe:
        case Op::kCmpEq:
        case Op::kCmpNe:
        case Op::kAnd:
        case Op::kOr:
        case Op::kStrConcat:
        case Op::kStrContains:
          f.env.vals[i.dst] =
              EmitBinOp(i.op, ValReg(f.env, i.src0), ValReg(f.env, i.src1));
          break;
        case Op::kNeg:
          f.env.vals[i.dst] = b_.Neg(Reg{ValReg(f.env, i.src0)}).id;
          break;
        case Op::kNot:
          f.env.vals[i.dst] = b_.Not(Reg{ValReg(f.env, i.src0)}).id;
          break;
        case Op::kStrLen:
          f.env.vals[i.dst] = b_.StrLen(Reg{ValReg(f.env, i.src0)}).id;
          break;
        case Op::kStrHashMod:
          f.env.vals[i.dst] =
              b_.StrHashMod(Reg{ValReg(f.env, i.src0)}, i.imm_int).id;
          break;
        case Op::kCpuBurn:
          b_.CpuBurn(i.imm_int);
          break;
        case Op::kGoto:
          if (i.target <= pc) return false;  // forward flow only
          f.pc = i.target;
          break;
        case Op::kBranchIfTrue:
        case Op::kBranchIfFalse: {
          if (i.target <= pc) return false;
          int c = ValReg(f.env, i.src0);
          auto cv = const_vals_.find(c);
          if (cv != const_vals_.end()) {
            bool truth = ConstTruth(cv->second);
            bool jump = i.op == Op::kBranchIfTrue ? truth : !truth;
            if (jump) f.pc = i.target;
            break;
          }
          Label other = b_.NewLabel();
          if (i.op == Op::kBranchIfTrue) {
            b_.BranchIfTrue(Reg{c}, other);
          } else {
            b_.BranchIfFalse(Reg{c}, other);
          }
          PathState taken = p;  // deep copy: tail duplication
          taken.frames.back().pc = i.target;
          if (!CompilePath(std::move(p))) return false;
          b_.Bind(other);
          return CompilePath(std::move(taken));
        }
        case Op::kReturn:
          p.frames.pop_back();
          break;
        case Op::kGetField: {
          if (i.index_is_reg) return false;  // SCA-opaque, stay staged
          const std::optional<SlotRec>& slot = f.env.recs[i.src0];
          if (!slot.has_value()) return false;
          int g = MapLocal(f.stage, slot->input_prov,
                           static_cast<int>(i.imm_int));
          f.env.vals[i.dst] = FieldValue(&p, slot->sym, g);
          break;
        }
        case Op::kSetField: {
          if (i.index_is_reg) return false;
          std::optional<SlotRec>& slot = f.env.recs[i.dst];
          if (!slot.has_value()) return false;
          int g = MapLocal(f.stage, slot->input_prov,
                           static_cast<int>(i.imm_int));
          // The staged path would surface OutOfRange here; keep it.
          if (g < 0) return false;
          slot->sym.overrides[g] = ValReg(f.env, i.src0);
          break;
        }
        case Op::kCopyRecord: {
          const std::optional<SlotRec>& src = f.env.recs[i.src0];
          if (!src.has_value()) return false;
          f.env.recs[i.dst] = *src;
          break;
        }
        case Op::kNewRecord:
          f.env.recs[i.dst] = SlotRec{/*input_prov=*/false, SymRec{}};
          break;
        case Op::kInputRecord: {
          if (i.imm_int != 0) return false;
          f.env.recs[i.dst] = SlotRec{/*input_prov=*/true, f.input};
          break;
        }
        case Op::kEmit: {
          const std::optional<SlotRec>& slot = f.env.recs[i.src0];
          if (!slot.has_value()) return false;
          if (f.stage + 1 < static_cast<int>(stages_.size())) {
            SymRec handoff = slot->sym;
            p.frames.push_back(MakeFrame(f.stage + 1, std::move(handoff)));
          } else {
            EmitBoundary(&p, slot->sym);
          }
          break;
        }
        default:
          // KAT opcodes, record concat, or anything introduced later: the
          // staged interpreter defines the behavior; fusion stays out.
          return false;
      }
    }
    b_.Goto(end_);
    return true;
  }

  const std::vector<FuseStage>& stages_;
  int width_;
  const std::vector<int>* sink_;
  FunctionBuilder b_;
  Label end_;
  int null_reg_ = -1;
  int body_start_ = 0;
  std::map<int64_t, int> int_pool_;
  std::map<uint64_t, int> dbl_pool_;   // keyed by bit pattern
  std::map<std::string, int> str_pool_;
  std::map<int, Value> const_vals_;    // fused register -> known constant
  std::set<int> input_reads_;
};

}  // namespace

std::optional<FusedChainProgram> FuseMapChain(
    const std::vector<FuseStage>& stages, int global_width,
    const std::vector<int>* sink_positions) {
  Fuser fuser(stages, global_width, sink_positions);
  return fuser.Fuse();
}

}  // namespace tac
}  // namespace blackbox
