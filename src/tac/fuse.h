// Fused-chain TAC specialization (DESIGN.md §2.6). At chain-assignment time
// the engine constant-folds the TAC programs of a fused chain's
// record-at-a-time stages (Maps, plus the sink projection when the chain
// ends at the sink) into ONE fused program per chain:
//
//   - inter-stage record handoff (emit -> input_record) is inlined away: a
//     downstream stage's reads resolve symbolically to the registers the
//     upstream stage computed, so no intermediate record is ever built;
//   - stores to fields no downstream read resolves are dead and emit no
//     code (the symbolic override map simply drops them);
//   - non-emitting paths short-circuit straight to the end of the program;
//   - constants of all stages are pooled into a preamble executed once per
//     chain runner, not once per record;
//   - chain-input reads compile to kGetInputField on *global* attribute
//     positions, served by a lazy ColumnView so only named columns are
//     touched.
//
// The compiler is a path interpreter with tail duplication: it walks every
// control-flow path through the whole stage pipeline, emitting straight-line
// code per path and a forward branch at each conditional. Anything it cannot
// prove it handles byte-identically — dynamic field indices, KAT opcodes,
// record concats, backward branches, reads of unset record registers, a
// setField that would raise OutOfRange, or a body exceeding the size cap —
// makes FuseMapChain return nullopt and the engine falls back to the staged
// interpreter, so fusion is a pure optimization with no behavior surface.

#ifndef BLACKBOX_TAC_FUSE_H_
#define BLACKBOX_TAC_FUSE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "tac/tac.h"

namespace blackbox {
namespace tac {

/// Version of the fused-program format / compilation scheme. Plan-cache keys
/// fold it in: cached plans are executed through fused programs, so a change
/// in how chains are specialized must invalidate cached entries even though
/// the logical plan is unchanged (DESIGN.md §2.6).
inline constexpr int kFusedProgramFormatVersion = 1;

/// One record-at-a-time stage of a chain, with the field maps its
/// FieldTranslation would apply. nullptr means identity; a non-null map is a
/// strict range-checked lookup (out-of-range local -> no position), matching
/// the interpreter's input_pos/output_pos. Callers translate the
/// FieldTranslation emptiness conventions into these pointers.
struct FuseStage {
  const Function* fn = nullptr;
  /// Local field index -> global position for records loaded from the input.
  const std::vector<int>* input_map = nullptr;
  /// Local field index -> global position for constructed output records.
  const std::vector<int>* output_map = nullptr;
};

struct FusedChainProgram {
  Function fn;
  /// Instructions [0, body_start) are the constant preamble, executed once
  /// per chain runner; [body_start, n) is the per-record body.
  int body_start = 0;
  /// Global attribute positions the fused body reads from the chain input
  /// (sorted, unique) — the chain's SCA-derived projection set.
  std::vector<int> input_reads;
  /// Static estimate of interpreter instructions saved per input record:
  /// the stage programs' total size minus the fused body size (>= 0).
  int64_t static_saved_per_record = 0;
};

/// Fuses a chain of RAT Map stages (plus an optional terminal sink
/// projection) into one program. `global_width` is the in-flight record
/// width (> 0 required). If `sink_positions` is non-null the chain ends at
/// the sink and emitted records are that projection (width = size of the
/// vector, position j taken from global attribute sink_positions[j]);
/// otherwise emitted records are full-width in-flight rows.
///
/// The fused program must be executed with an identity FieldTranslation of
/// the emitted width (see Interpreter::RunFusedChain) and satisfies
/// sca::BatchRefuter's legality rules by construction (forward branches
/// only, static field indices, input 0 only).
std::optional<FusedChainProgram> FuseMapChain(
    const std::vector<FuseStage>& stages, int global_width,
    const std::vector<int>* sink_positions);

}  // namespace tac
}  // namespace blackbox

#endif  // BLACKBOX_TAC_FUSE_H_
