#include "tac/tac.h"

#include <sstream>

namespace blackbox {
namespace tac {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kConstInt: return "const_int";
    case Opcode::kConstDouble: return "const_double";
    case Opcode::kConstStr: return "const_str";
    case Opcode::kConstNull: return "const_null";
    case Opcode::kMove: return "move";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kMod: return "mod";
    case Opcode::kNeg: return "neg";
    case Opcode::kCmpLt: return "cmp_lt";
    case Opcode::kCmpLe: return "cmp_le";
    case Opcode::kCmpGt: return "cmp_gt";
    case Opcode::kCmpGe: return "cmp_ge";
    case Opcode::kCmpEq: return "cmp_eq";
    case Opcode::kCmpNe: return "cmp_ne";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kNot: return "not";
    case Opcode::kStrLen: return "str_len";
    case Opcode::kStrConcat: return "str_concat";
    case Opcode::kStrContains: return "str_contains";
    case Opcode::kStrHashMod: return "str_hash_mod";
    case Opcode::kGoto: return "goto";
    case Opcode::kBranchIfTrue: return "br_true";
    case Opcode::kBranchIfFalse: return "br_false";
    case Opcode::kReturn: return "return";
    case Opcode::kGetField: return "getField";
    case Opcode::kSetField: return "setField";
    case Opcode::kCopyRecord: return "copy";
    case Opcode::kNewRecord: return "new_record";
    case Opcode::kConcatRecords: return "concat";
    case Opcode::kEmit: return "emit";
    case Opcode::kInputRecord: return "input_record";
    case Opcode::kInputCount: return "input_count";
    case Opcode::kInputAt: return "input_at";
    case Opcode::kGetInputField: return "get_input_field";
    case Opcode::kCpuBurn: return "cpu_burn";
  }
  return "?";
}

std::string Instr::ToString(int label) const {
  std::ostringstream out;
  out << label << ": " << OpcodeName(op);
  if (dst >= 0) out << " $" << dst;
  if (src0 >= 0) out << " $" << src0;
  if (op == Opcode::kGetField || op == Opcode::kSetField) {
    if (index_is_reg) {
      out << " [$" << src1 << "]";
    } else {
      out << " [" << imm_int << "]";
    }
  } else if (src1 >= 0) {
    out << " $" << src1;
  }
  switch (op) {
    case Opcode::kConstInt:
    case Opcode::kInputRecord:
    case Opcode::kInputCount:
    case Opcode::kInputAt:
    case Opcode::kGetInputField:
    case Opcode::kStrHashMod:
    case Opcode::kCpuBurn:
      out << " #" << imm_int;
      break;
    case Opcode::kConstDouble:
      out << " #" << imm_double;
      break;
    case Opcode::kConstStr:
      out << " \"" << imm_str << "\"";
      break;
    default:
      break;
  }
  if (target >= 0) out << " -> " << target;
  return out.str();
}

std::string Function::ToString() const {
  std::ostringstream out;
  out << "function " << name_ << "(" << num_inputs_ << " input"
      << (num_inputs_ == 1 ? "" : "s") << ", "
      << (kind_ == UdfKind::kRat ? "RAT" : "KAT") << ")\n";
  for (size_t i = 0; i < instrs_.size(); ++i) {
    out << "  " << instrs_[i].ToString(static_cast<int>(i)) << "\n";
  }
  return out.str();
}

FunctionBuilder::FunctionBuilder(std::string name, int num_inputs,
                                 UdfKind kind) {
  fn_.name_ = std::move(name);
  fn_.num_inputs_ = num_inputs;
  fn_.kind_ = kind;
}

Reg FunctionBuilder::NewReg(RegType type) {
  fn_.reg_types_.push_back(type);
  return Reg{static_cast<int>(fn_.reg_types_.size()) - 1};
}

void FunctionBuilder::Push(Instr instr) { fn_.instrs_.push_back(std::move(instr)); }

Reg FunctionBuilder::InputRecord(int input) {
  Reg r = NewReg(RegType::kRecord);
  Instr i;
  i.op = Opcode::kInputRecord;
  i.dst = r.id;
  i.imm_int = input;
  Push(std::move(i));
  return r;
}

Reg FunctionBuilder::InputCount(int input) {
  Reg r = NewReg(RegType::kValue);
  Instr i;
  i.op = Opcode::kInputCount;
  i.dst = r.id;
  i.imm_int = input;
  Push(std::move(i));
  return r;
}

Reg FunctionBuilder::InputAt(int input, Reg pos) {
  Reg r = NewReg(RegType::kRecord);
  Instr i;
  i.op = Opcode::kInputAt;
  i.dst = r.id;
  i.src0 = pos.id;
  i.imm_int = input;
  Push(std::move(i));
  return r;
}

Reg FunctionBuilder::ConstInt(int64_t v) {
  Reg r = NewReg(RegType::kValue);
  Instr i;
  i.op = Opcode::kConstInt;
  i.dst = r.id;
  i.imm_int = v;
  Push(std::move(i));
  return r;
}

Reg FunctionBuilder::ConstDouble(double v) {
  Reg r = NewReg(RegType::kValue);
  Instr i;
  i.op = Opcode::kConstDouble;
  i.dst = r.id;
  i.imm_double = v;
  Push(std::move(i));
  return r;
}

Reg FunctionBuilder::ConstStr(std::string v) {
  Reg r = NewReg(RegType::kValue);
  Instr i;
  i.op = Opcode::kConstStr;
  i.dst = r.id;
  i.imm_str = std::move(v);
  Push(std::move(i));
  return r;
}

Reg FunctionBuilder::ConstNull() {
  Reg r = NewReg(RegType::kValue);
  Instr i;
  i.op = Opcode::kConstNull;
  i.dst = r.id;
  Push(std::move(i));
  return r;
}

namespace {
Instr Binary(Opcode op, int dst, int a, int b) {
  Instr i;
  i.op = op;
  i.dst = dst;
  i.src0 = a;
  i.src1 = b;
  return i;
}
Instr Unary(Opcode op, int dst, int a) {
  Instr i;
  i.op = op;
  i.dst = dst;
  i.src0 = a;
  return i;
}
}  // namespace

#define BB_BINOP(NAME, OP)                        \
  Reg FunctionBuilder::NAME(Reg a, Reg b) {       \
    Reg r = NewReg(RegType::kValue);              \
    Push(Binary(Opcode::OP, r.id, a.id, b.id));   \
    return r;                                     \
  }

BB_BINOP(Add, kAdd)
BB_BINOP(Sub, kSub)
BB_BINOP(Mul, kMul)
BB_BINOP(Div, kDiv)
BB_BINOP(Mod, kMod)
BB_BINOP(CmpLt, kCmpLt)
BB_BINOP(CmpLe, kCmpLe)
BB_BINOP(CmpGt, kCmpGt)
BB_BINOP(CmpGe, kCmpGe)
BB_BINOP(CmpEq, kCmpEq)
BB_BINOP(CmpNe, kCmpNe)
BB_BINOP(And, kAnd)
BB_BINOP(Or, kOr)
BB_BINOP(StrConcat, kStrConcat)
BB_BINOP(StrContains, kStrContains)

#undef BB_BINOP

Reg FunctionBuilder::Move(Reg a) {
  Reg r = NewReg(RegType::kValue);
  Push(Unary(Opcode::kMove, r.id, a.id));
  return r;
}

void FunctionBuilder::AccumAdd(Reg dst, Reg src) {
  Push(Binary(Opcode::kAdd, dst.id, dst.id, src.id));
}

void FunctionBuilder::Assign(Reg dst, Reg src) {
  Push(Unary(Opcode::kMove, dst.id, src.id));
}

Reg FunctionBuilder::Neg(Reg a) {
  Reg r = NewReg(RegType::kValue);
  Push(Unary(Opcode::kNeg, r.id, a.id));
  return r;
}

Reg FunctionBuilder::Not(Reg a) {
  Reg r = NewReg(RegType::kValue);
  Push(Unary(Opcode::kNot, r.id, a.id));
  return r;
}

Reg FunctionBuilder::StrLen(Reg a) {
  Reg r = NewReg(RegType::kValue);
  Push(Unary(Opcode::kStrLen, r.id, a.id));
  return r;
}

Reg FunctionBuilder::StrHashMod(Reg a, int64_t mod) {
  Reg r = NewReg(RegType::kValue);
  Instr i = Unary(Opcode::kStrHashMod, r.id, a.id);
  i.imm_int = mod;
  Push(std::move(i));
  return r;
}

Reg FunctionBuilder::GetField(Reg rec, int index) {
  Reg r = NewReg(RegType::kValue);
  Instr i;
  i.op = Opcode::kGetField;
  i.dst = r.id;
  i.src0 = rec.id;
  i.imm_int = index;
  Push(std::move(i));
  return r;
}

Reg FunctionBuilder::GetInputField(int pos) {
  Reg r = NewReg(RegType::kValue);
  Instr i;
  i.op = Opcode::kGetInputField;
  i.dst = r.id;
  i.imm_int = pos;
  Push(std::move(i));
  return r;
}

Reg FunctionBuilder::GetFieldDyn(Reg rec, Reg index) {
  Reg r = NewReg(RegType::kValue);
  Instr i;
  i.op = Opcode::kGetField;
  i.dst = r.id;
  i.src0 = rec.id;
  i.src1 = index.id;
  i.index_is_reg = true;
  Push(std::move(i));
  return r;
}

void FunctionBuilder::SetField(Reg rec, int index, Reg value) {
  Instr i;
  i.op = Opcode::kSetField;
  i.dst = rec.id;
  i.src0 = value.id;
  i.imm_int = index;
  Push(std::move(i));
}

void FunctionBuilder::SetFieldDyn(Reg rec, Reg index, Reg value) {
  Instr i;
  i.op = Opcode::kSetField;
  i.dst = rec.id;
  i.src0 = value.id;
  i.src1 = index.id;
  i.index_is_reg = true;
  Push(std::move(i));
}

Reg FunctionBuilder::Copy(Reg rec) {
  Reg r = NewReg(RegType::kRecord);
  Push(Unary(Opcode::kCopyRecord, r.id, rec.id));
  return r;
}

Reg FunctionBuilder::NewRecord() {
  Reg r = NewReg(RegType::kRecord);
  Instr i;
  i.op = Opcode::kNewRecord;
  i.dst = r.id;
  Push(std::move(i));
  return r;
}

Reg FunctionBuilder::Concat(Reg a, Reg b) {
  Reg r = NewReg(RegType::kRecord);
  Push(Binary(Opcode::kConcatRecords, r.id, a.id, b.id));
  return r;
}

void FunctionBuilder::Emit(Reg rec) {
  Instr i;
  i.op = Opcode::kEmit;
  i.src0 = rec.id;
  Push(std::move(i));
}

Label FunctionBuilder::NewLabel() {
  label_positions_.push_back(-1);
  return Label{static_cast<int>(label_positions_.size()) - 1};
}

void FunctionBuilder::Bind(Label label) {
  label_positions_[label.id] = static_cast<int>(fn_.instrs_.size());
}

void FunctionBuilder::Goto(Label label) {
  Instr i;
  i.op = Opcode::kGoto;
  fixups_.emplace_back(static_cast<int>(fn_.instrs_.size()), label.id);
  Push(std::move(i));
}

void FunctionBuilder::BranchIfTrue(Reg cond, Label label) {
  Instr i;
  i.op = Opcode::kBranchIfTrue;
  i.src0 = cond.id;
  fixups_.emplace_back(static_cast<int>(fn_.instrs_.size()), label.id);
  Push(std::move(i));
}

void FunctionBuilder::BranchIfFalse(Reg cond, Label label) {
  Instr i;
  i.op = Opcode::kBranchIfFalse;
  i.src0 = cond.id;
  fixups_.emplace_back(static_cast<int>(fn_.instrs_.size()), label.id);
  Push(std::move(i));
}

void FunctionBuilder::Return() {
  Instr i;
  i.op = Opcode::kReturn;
  Push(std::move(i));
}

void FunctionBuilder::CpuBurn(int64_t units) {
  Instr i;
  i.op = Opcode::kCpuBurn;
  i.imm_int = units;
  Push(std::move(i));
}

Status FunctionBuilder::Verify() const {
  const auto& instrs = fn_.instrs_;
  const int n = static_cast<int>(instrs.size());
  if (n == 0) return Status::InvalidArgument("empty function " + fn_.name_);
  if (instrs.back().op != Opcode::kReturn &&
      instrs.back().op != Opcode::kGoto) {
    return Status::InvalidArgument("function " + fn_.name_ +
                                   " must end in return or goto");
  }
  auto check_reg = [&](int reg, RegType want, const char* what) -> Status {
    if (reg < 0 || reg >= fn_.num_registers()) {
      return Status::InvalidArgument(std::string("bad register in ") + what);
    }
    if (fn_.reg_types_[reg] != want) {
      return Status::InvalidArgument(std::string("register type mismatch in ") +
                                     what + " of " + fn_.name_);
    }
    return Status::OK();
  };
  for (int idx = 0; idx < n; ++idx) {
    const Instr& i = instrs[idx];
    switch (i.op) {
      case Opcode::kGoto:
      case Opcode::kBranchIfTrue:
      case Opcode::kBranchIfFalse:
        if (i.target < 0 || i.target > n) {
          return Status::InvalidArgument("unresolved branch target in " +
                                         fn_.name_);
        }
        if (i.op != Opcode::kGoto) {
          BLACKBOX_RETURN_NOT_OK(check_reg(i.src0, RegType::kValue, "branch"));
        }
        break;
      case Opcode::kGetField:
        BLACKBOX_RETURN_NOT_OK(check_reg(i.src0, RegType::kRecord, "getField"));
        if (i.index_is_reg) {
          BLACKBOX_RETURN_NOT_OK(
              check_reg(i.src1, RegType::kValue, "getField index"));
        }
        break;
      case Opcode::kSetField:
        BLACKBOX_RETURN_NOT_OK(check_reg(i.dst, RegType::kRecord, "setField"));
        BLACKBOX_RETURN_NOT_OK(
            check_reg(i.src0, RegType::kValue, "setField value"));
        if (i.index_is_reg) {
          BLACKBOX_RETURN_NOT_OK(
              check_reg(i.src1, RegType::kValue, "setField index"));
        }
        break;
      case Opcode::kCopyRecord:
      case Opcode::kEmit:
        BLACKBOX_RETURN_NOT_OK(
            check_reg(i.src0, RegType::kRecord, "record operand"));
        break;
      case Opcode::kConcatRecords:
        BLACKBOX_RETURN_NOT_OK(check_reg(i.src0, RegType::kRecord, "concat"));
        BLACKBOX_RETURN_NOT_OK(check_reg(i.src1, RegType::kRecord, "concat"));
        break;
      case Opcode::kInputRecord:
      case Opcode::kInputAt:
      case Opcode::kInputCount:
        if (i.imm_int < 0 || i.imm_int >= fn_.num_inputs_) {
          return Status::InvalidArgument("input index out of range in " +
                                         fn_.name_);
        }
        break;
      case Opcode::kGetInputField:
        if (i.imm_int < 0) {
          return Status::InvalidArgument(
              "negative get_input_field position in " + fn_.name_);
        }
        break;
      default:
        break;
    }
  }
  return Status::OK();
}

StatusOr<Function> FunctionBuilder::Build() {
  if (built_) return Status::Internal("Build() called twice");
  for (const auto& [instr_idx, label_id] : fixups_) {
    int pos = label_positions_[label_id];
    if (pos < 0) {
      return Status::InvalidArgument("unbound label in " + fn_.name_);
    }
    fn_.instrs_[instr_idx].target = pos;
  }
  BLACKBOX_RETURN_NOT_OK(Verify());
  built_ = true;
  return fn_;
}

}  // namespace tac
}  // namespace blackbox
