// Text-mining pipeline example (§7.2): a chain of expensive NLP-style Map
// operators whose order the optimizer is free to choose within the
// dependency constraints discovered from their code. Running the cheap,
// selective extractors first saves most of the work — the optimizer finds
// that order without knowing anything about NLP.
//
// Run: ./build/examples/text_mining

#include <cstdio>

#include "core/optimizer_api.h"
#include "engine/executor.h"
#include "workloads/textmining.h"

using namespace blackbox;

int main() {
  workloads::TextMiningScale scale;
  scale.documents = 5000;
  workloads::Workload w = workloads::MakeTextMining(scale);

  std::printf("=== Text-mining pipeline (implemented order) ===\n%s\n",
              w.flow.ToString().c_str());

  core::BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(w.flow);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "%zu valid orders (Preprocess pinned first, RelationExtract pinned\n"
      "last by read/write conflicts; the four annotators commute: 4! = 24)\n\n",
      result->num_alternatives);

  engine::Executor exec(&result->annotated);
  for (const auto& [src, data] : w.source_data) exec.BindSource(src, &data);

  const auto& best = result->ranked.front();
  const auto& worst = result->ranked.back();
  engine::ExecStats best_stats, worst_stats;
  StatusOr<DataSet> a = exec.Execute(best.physical, &best_stats);
  StatusOr<DataSet> b = exec.Execute(worst.physical, &worst_stats);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "execution error\n");
    return 1;
  }

  std::printf("best order:\n%s  -> %.3fs compute\n\n",
              reorder::PlanToString(best.logical, w.flow).c_str(),
              best_stats.wall_seconds);
  std::printf("worst order:\n%s  -> %.3fs compute (%.1fx slower)\n\n",
              reorder::PlanToString(worst.logical, w.flow).c_str(),
              worst_stats.wall_seconds,
              worst_stats.wall_seconds / best_stats.wall_seconds);
  std::printf("both orders extract the same %zu gene-drug relations\n",
              a->size());
  return 0;
}
