// Text-mining pipeline example (§7.2): a chain of expensive NLP-style Map
// operators whose order the optimizer is free to choose within the
// dependency constraints discovered from their code. Running the cheap,
// selective extractors first saves most of the work — the optimizer finds
// that order without knowing anything about NLP.
//
// Run: ./build/examples/text_mining

#include <cstdio>

#include "api/optimized_program.h"
#include "reorder/plan.h"
#include "workloads/textmining.h"

using namespace blackbox;

int main() {
  workloads::TextMiningScale scale;
  scale.documents = 5000;
  workloads::Workload w = workloads::MakeTextMining(scale);

  std::printf("=== Text-mining pipeline (implemented order) ===\n%s\n",
              w.flow.ToString().c_str());

  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, api::ScaProvider());
  if (!program.ok()) {
    std::fprintf(stderr, "error: %s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "%zu valid orders (Preprocess pinned first, RelationExtract pinned\n"
      "last by read/write conflicts; the four annotators commute: 4! = 24)\n\n",
      program->num_alternatives());

  Status bound = program->BindSources(w.source_data);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind error: %s\n", bound.ToString().c_str());
    return 1;
  }

  size_t last = program->ranked().size() - 1;
  engine::ExecStats best_stats, worst_stats;
  StatusOr<DataSet> a = program->RunBest(&best_stats);
  StatusOr<DataSet> b = program->Run(last, &worst_stats);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "execution error\n");
    return 1;
  }

  std::printf("best order:\n%s  -> %.3fs compute\n\n",
              reorder::PlanToString(program->best().logical,
                                    program->flow())
                  .c_str(),
              best_stats.wall_seconds);
  std::printf("worst order:\n%s  -> %.3fs compute (%.1fx slower)\n\n",
              reorder::PlanToString(program->ranked()[last].logical,
                                    program->flow())
                  .c_str(),
              worst_stats.wall_seconds,
              worst_stats.wall_seconds / best_stats.wall_seconds);
  std::printf("both orders extract the same %zu gene-drug relations\n",
              a->size());
  return 0;
}
