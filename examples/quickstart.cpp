// Quickstart: the paper's Section 3 running example, end to end.
//
// Builds the three-Map data flow over records <A, B>:
//   f1: B := |B|      f2: emit iff A >= 0      f3: A := A + B
// with the fluent Pipeline API, then (1) statically analyzes the UDFs to
// discover read/write sets, (2) enumerates every valid reordering, (3) picks
// the cheapest physical plan, and (4) executes it on a small data set.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "api/pipeline.h"
#include "reorder/plan.h"
#include "sca/analyzer.h"

using namespace blackbox;

namespace {

api::Udf Built(tac::FunctionBuilder&& b) {
  StatusOr<tac::Function> fn = b.Build();
  if (!fn.ok()) {
    std::fprintf(stderr, "build error: %s\n", fn.status().ToString().c_str());
    std::abort();
  }
  return std::make_shared<const tac::Function>(std::move(fn).value());
}

}  // namespace

int main() {
  // --- Write the three UDFs in the TAC IR (cf. the listings in §3). ---
  tac::FunctionBuilder b1("f1_abs", 1, tac::UdfKind::kRat);
  {
    tac::Reg ir = b1.InputRecord(0);
    tac::Reg v = b1.GetField(ir, 1);
    tac::Reg out = b1.Copy(ir);
    tac::Label done = b1.NewLabel();
    b1.BranchIfTrue(b1.CmpGe(v, b1.ConstInt(0)), done);
    b1.SetField(out, 1, b1.Neg(v));
    b1.Bind(done);
    b1.Emit(out);
    b1.Return();
  }
  auto f1 = Built(std::move(b1));

  tac::FunctionBuilder b2("f2_filter", 1, tac::UdfKind::kRat);
  {
    tac::Reg ir = b2.InputRecord(0);
    tac::Reg a = b2.GetField(ir, 0);
    tac::Label skip = b2.NewLabel();
    b2.BranchIfTrue(b2.CmpLt(a, b2.ConstInt(0)), skip);
    b2.Emit(b2.Copy(ir));
    b2.Bind(skip);
    b2.Return();
  }
  auto f2 = Built(std::move(b2));

  tac::FunctionBuilder b3("f3_sum", 1, tac::UdfKind::kRat);
  {
    tac::Reg ir = b3.InputRecord(0);
    tac::Reg a = b3.GetField(ir, 0);
    tac::Reg bb = b3.GetField(ir, 1);
    tac::Reg out = b3.Copy(ir);
    b3.SetField(out, 0, b3.Add(a, bb));
    b3.Emit(out);
    b3.Return();
  }
  auto f3 = Built(std::move(b3));

  std::printf("=== UDF code (three-address form, cf. §3) ===\n%s\n%s\n%s\n",
              f1->ToString().c_str(), f2->ToString().c_str(),
              f3->ToString().c_str());

  // --- Open the black boxes: static code analysis (§5). ---
  for (const auto& fn : {f1, f2, f3}) {
    StatusOr<sca::LocalUdfSummary> s = sca::AnalyzeUdf(*fn);
    std::printf("SCA(%s) = %s\n", fn->name().c_str(),
                s.ok() ? s->ToString().c_str() : s.status().ToString().c_str());
  }

  // --- Assemble the pipeline P: I -> Map1 -> Map2 -> Map3 -> O. ---
  api::Pipeline p;
  dataflow::Hints filter_hints;
  filter_hints.selectivity = 0.5;  // f2 drops about half the records
  api::Stream src = p.Source("I", 2, {.rows = 1000, .avg_bytes = 18});
  src.Map("map1_abs", f1)
      .Map("map2_filter", f2, {.hints = filter_hints})
      .Map("map3_sum", f3)
      .Sink("O");

  // --- Optimize: annotate via SCA, enumerate reorderings, cost, rank. ---
  StatusOr<api::OptimizedProgram> program = p.Optimize();
  if (!program.ok()) {
    std::fprintf(stderr, "optimize error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== %zu alternative data flows ===\n",
              program->num_alternatives());
  for (const auto& alt : program->ranked()) {
    std::printf("rank %d (est. cost %.0f):\n%s", alt.rank, alt.cost,
                reorder::PlanToString(alt.logical, program->flow()).c_str());
  }
  std::printf(
      "\nThe optimizer pushed the selective filter f2 below f1 (valid: no\n"
      "read/write conflict), but could not move it past f3 (conflict on A).\n");

  // --- Execute the best plan. ---
  DataSet data;
  data.Add(Record({Value(int64_t{2}), Value(int64_t{-3})}));
  data.Add(Record({Value(int64_t{-2}), Value(int64_t{-3})}));
  data.Add(Record({Value(int64_t{10}), Value(int64_t{5})}));

  Status bound = program->BindSource(src, &data);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind error: %s\n", bound.ToString().c_str());
    return 1;
  }
  engine::ExecStats stats;
  StatusOr<DataSet> out = program->RunBest(&stats);
  if (!out.ok()) {
    std::fprintf(stderr, "execute error: %s\n",
                 out.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== execution ===\ninput : %s\noutput: %s\nstats : %s\n",
              data.ToString().c_str(), out->ToString().c_str(),
              stats.ToString().c_str());
  return 0;
}
