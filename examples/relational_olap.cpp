// Relational OLAP example: optimizing and running TPC-H Q15 (§7.2).
//
// Demonstrates the aggregation push-up rewrite (exchanging a Reduce and a
// Match via the invariant-grouping conditions of §4.3.2) and the physical
// consequences: when the Reduce runs first, the Match reuses its hash
// partitioning; when the Match runs first, the optimizer broadcasts the small
// supplier relation instead.
//
// Run: ./build/examples/relational_olap

#include <cstdio>

#include "core/optimizer_api.h"
#include "engine/executor.h"
#include "workloads/tpch.h"

using namespace blackbox;

int main() {
  workloads::TpchScale scale;
  scale.lineitems = 30000;
  scale.suppliers = 100;
  workloads::Workload w = workloads::MakeTpchQ15(scale);

  std::printf("=== TPC-H Q15 logical flow (Figure 3a) ===\n%s\n",
              w.flow.ToString().c_str());

  core::BlackBoxOptimizer optimizer;  // SCA mode by default
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(w.flow);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("=== %zu alternative orders (paper: 4) ===\n\n",
              result->num_alternatives);
  for (const auto& alt : result->ranked) {
    std::printf("---- rank %d, estimated cost %.3g ----\n%s\n", alt.rank,
                alt.cost, alt.physical.ToString(w.flow).c_str());
  }

  engine::Executor exec(&result->annotated);
  for (const auto& [src, data] : w.source_data) exec.BindSource(src, &data);

  for (const auto& alt : result->ranked) {
    engine::ExecStats stats;
    StatusOr<DataSet> out = exec.Execute(alt.physical, &stats);
    if (!out.ok()) {
      std::fprintf(stderr, "error: %s\n", out.status().ToString().c_str());
      return 1;
    }
    std::printf("rank %d executed: %zu result rows, %s\n", alt.rank,
                out->size(), stats.ToString().c_str());
  }
  std::printf(
      "\nAll alternatives produce the same revenue-per-supplier result; the\n"
      "optimizer picks the cheapest order and strategies automatically.\n");
  return 0;
}
