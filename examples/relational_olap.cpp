// Relational OLAP example: optimizing and running TPC-H Q15 (§7.2).
//
// Demonstrates the aggregation push-up rewrite (exchanging a Reduce and a
// Match via the invariant-grouping conditions of §4.3.2) and the physical
// consequences: when the Reduce runs first, the Match reuses its hash
// partitioning; when the Match runs first, the optimizer broadcasts the small
// supplier relation instead.
//
// Run: ./build/examples/relational_olap

#include <cstdio>

#include "api/optimized_program.h"
#include "workloads/tpch.h"

using namespace blackbox;

int main() {
  workloads::TpchScale scale;
  scale.lineitems = 30000;
  scale.suppliers = 100;
  workloads::Workload w = workloads::MakeTpchQ15(scale);

  std::printf("=== TPC-H Q15 logical flow (Figure 3a) ===\n%s\n",
              w.flow.ToString().c_str());

  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, api::ScaProvider());
  if (!program.ok()) {
    std::fprintf(stderr, "error: %s\n", program.status().ToString().c_str());
    return 1;
  }

  std::printf("=== %zu alternative orders (paper: 4) ===\n\n",
              program->num_alternatives());
  for (const auto& alt : program->ranked()) {
    std::printf("---- rank %d, estimated cost %.3g ----\n%s\n", alt.rank,
                alt.cost, alt.physical.ToString(program->flow()).c_str());
  }

  Status bound = program->BindSources(w.source_data);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind error: %s\n", bound.ToString().c_str());
    return 1;
  }

  for (size_t i = 0; i < program->ranked().size(); ++i) {
    engine::ExecStats stats;
    StatusOr<DataSet> out = program->Run(i, &stats);
    if (!out.ok()) {
      std::fprintf(stderr, "error: %s\n", out.status().ToString().c_str());
      return 1;
    }
    std::printf("rank %d executed: %zu result rows, %s\n",
                program->ranked()[i].rank, out->size(),
                stats.ToString().c_str());
  }
  std::printf(
      "\nAll alternatives produce the same revenue-per-supplier result; the\n"
      "optimizer picks the cheapest order and strategies automatically.\n");
  return 0;
}
