// Non-relational data flow example: weblog clickstream sessionization (§7.2,
// Figure 4) — the paper's headline capability: reordering *non-relational*
// operators (two session-level Reduces and two Matches) that no algebraic
// optimizer could touch, because their semantics live in imperative UDF code.
//
// Also demonstrates the manual-annotation vs. static-code-analysis trade-off
// (Table 1): the "append user info" UDF reads a field through a computed
// index, which SCA must treat conservatively — one valid rotation is lost.
//
// Run: ./build/examples/clickstream_sessions

#include <cstdio>

#include "core/optimizer_api.h"
#include "engine/executor.h"
#include "workloads/clickstream.h"

using namespace blackbox;

namespace {

StatusOr<core::OptimizationResult> OptimizeWith(
    const workloads::Workload& w, dataflow::AnnotationMode mode) {
  core::BlackBoxOptimizer::Options opts;
  opts.mode = mode;
  return core::BlackBoxOptimizer(opts).Optimize(w.flow);
}

}  // namespace

int main() {
  workloads::ClickstreamScale scale;
  scale.sessions = 5000;
  scale.users = 500;
  workloads::Workload w = workloads::MakeClickstream(scale);

  std::printf("=== Clickstream flow (Figure 4a) ===\n%s\n",
              w.flow.ToString().c_str());

  StatusOr<core::OptimizationResult> manual =
      OptimizeWith(w, dataflow::AnnotationMode::kManual);
  StatusOr<core::OptimizationResult> sca =
      OptimizeWith(w, dataflow::AnnotationMode::kSca);
  if (!manual.ok() || !sca.ok()) {
    std::fprintf(stderr, "optimize error\n");
    return 1;
  }
  std::printf(
      "alternatives: %zu with manual annotations, %zu with SCA\n"
      "(SCA cannot resolve the computed field index in append_user_info and\n"
      " conservatively widens its read set, losing one join rotation)\n\n",
      manual->num_alternatives, sca->num_alternatives);

  std::printf("=== best plan (manual annotations) ===\n%s\n",
              reorder::PlanToString(manual->best().logical, w.flow).c_str());
  std::printf(
      "The selective \"filter logged-in sessions\" join was pushed below\n"
      "BOTH session Reduces — the rewrite the paper highlights as unique\n"
      "among data processing systems (Figure 4b).\n\n");

  engine::Executor exec(&manual->annotated);
  for (const auto& [src, data] : w.source_data) exec.BindSource(src, &data);
  engine::ExecStats best_stats, orig_stats;
  StatusOr<DataSet> best = exec.Execute(manual->best().physical, &best_stats);
  if (!best.ok()) {
    std::fprintf(stderr, "error: %s\n", best.status().ToString().c_str());
    return 1;
  }
  // Execute the originally implemented order for comparison.
  std::string orig_key =
      reorder::CanonicalString(reorder::PlanFromFlow(w.flow));
  for (const auto& alt : manual->ranked) {
    if (reorder::CanonicalString(alt.logical) == orig_key) {
      StatusOr<DataSet> out = exec.Execute(alt.physical, &orig_stats);
      if (!out.ok()) return 1;
      break;
    }
  }
  std::printf("best plan:        %s\n", best_stats.ToString().c_str());
  std::printf("implemented plan: %s\n", orig_stats.ToString().c_str());
  std::printf("result: %zu buy sessions of logged-in users\n", best->size());
  return 0;
}
