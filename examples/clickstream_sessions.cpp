// Non-relational data flow example: weblog clickstream sessionization (§7.2,
// Figure 4) — the paper's headline capability: reordering *non-relational*
// operators (two session-level Reduces and two Matches) that no algebraic
// optimizer could touch, because their semantics live in imperative UDF code.
//
// Also demonstrates pluggable annotation providers and the manual-annotation
// vs. static-code-analysis trade-off (Table 1): the "append user info" UDF
// reads a field through a computed index, which SCA must treat conservatively
// — one valid rotation is lost.
//
// Run: ./build/examples/clickstream_sessions

#include <cstdio>

#include "api/optimized_program.h"
#include "reorder/plan.h"
#include "workloads/clickstream.h"

using namespace blackbox;

int main() {
  workloads::ClickstreamScale scale;
  scale.sessions = 5000;
  scale.users = 500;
  workloads::Workload w = workloads::MakeClickstream(scale);

  std::printf("=== Clickstream flow (Figure 4a) ===\n%s\n",
              w.flow.ToString().c_str());

  StatusOr<api::OptimizedProgram> manual =
      api::OptimizeFlow(w.flow, api::ManualProvider());
  StatusOr<api::OptimizedProgram> sca =
      api::OptimizeFlow(w.flow, api::ScaProvider());
  if (!manual.ok() || !sca.ok()) {
    std::fprintf(stderr, "optimize error\n");
    return 1;
  }
  std::printf(
      "alternatives: %zu with manual annotations, %zu with SCA\n"
      "(SCA cannot resolve the computed field index in append_user_info and\n"
      " conservatively widens its read set, losing one join rotation)\n\n",
      manual->num_alternatives(), sca->num_alternatives());

  std::printf("=== best plan (manual annotations) ===\n%s\n",
              reorder::PlanToString(manual->best().logical, w.flow).c_str());
  std::printf(
      "The selective \"filter logged-in sessions\" join was pushed below\n"
      "BOTH session Reduces — the rewrite the paper highlights as unique\n"
      "among data processing systems (Figure 4b).\n\n");

  Status bound = manual->BindSources(w.source_data);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind error: %s\n", bound.ToString().c_str());
    return 1;
  }
  engine::ExecStats best_stats, orig_stats;
  StatusOr<DataSet> best = manual->RunBest(&best_stats);
  if (!best.ok()) {
    std::fprintf(stderr, "error: %s\n", best.status().ToString().c_str());
    return 1;
  }
  // Execute the originally implemented order for comparison.
  int implemented = manual->ImplementedIndex();
  if (implemented >= 0) {
    StatusOr<DataSet> out =
        manual->Run(static_cast<size_t>(implemented), &orig_stats);
    if (!out.ok()) return 1;
  }
  std::printf("best plan:        %s\n", best_stats.ToString().c_str());
  std::printf("implemented plan: %s\n", orig_stats.ToString().c_str());
  std::printf("result: %zu buy sessions of logged-in users\n", best->size());
  return 0;
}
