// Specialization smoke (DESIGN.md §2.6): optimize the text-mining workload
// (the 8-node Map-heavy chain), execute its best plan with fused-chain TAC
// specialization on and off, and hold the tentpole acceptance bar:
//
//   - the sink outputs must be byte-identical in both modes, and
//   - specialization must cut interp_instructions by at least 2x.
//
// Exits non-zero if either fails, so CI's specialization-smoke step catches
// a fuser regression (silently bailing to the staged path shows up here as
// a ratio of 1). BENCH_spec_smoke.json records the deterministic counters;
// tools/bench_baseline.py re-asserts the invariants on every check. Pass
// --no-specialize to print the interpreted-mode stats only (manual A/B).

#include <cstdio>
#include <cstring>
#include <string>

#include "api/annotation_provider.h"
#include "api/optimized_program.h"
#include "workloads/textmining.h"

int main(int argc, char** argv) {
  using namespace blackbox;

  bool specialize_only_off = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-specialize") == 0) {
      specialize_only_off = true;
    }
  }

  workloads::TextMiningScale scale;
  scale.documents = 20000;
  workloads::Workload w = workloads::MakeTextMining(scale);

  api::ScaProvider sca;
  api::OptimizeOptions options;
  options.use_plan_cache = false;
  options.exec.dop = 8;
  options.exec.mem_budget_bytes = 1 << 20;

  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;
  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, sca, options, sources);
  if (!program.ok()) {
    std::fprintf(stderr, "optimize failed: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  program->mutable_exec_options().enable_chain_specialization = false;
  engine::ExecStats off;
  StatusOr<DataSet> out_off = program->RunBest(&off);
  if (!out_off.ok()) {
    std::fprintf(stderr, "interpreted run failed: %s\n",
                 out_off.status().ToString().c_str());
    return 1;
  }
  std::printf("interpreted:  %s\n", off.ToString().c_str());
  if (specialize_only_off) return 0;

  program->mutable_exec_options().enable_chain_specialization = true;
  engine::ExecStats on;
  StatusOr<DataSet> out_on = program->RunBest(&on);
  if (!out_on.ok()) {
    std::fprintf(stderr, "specialized run failed: %s\n",
                 out_on.status().ToString().c_str());
    return 1;
  }
  std::printf("specialized:  %s\n", on.ToString().c_str());

  bool outputs_match = out_on->size() == out_off->size();
  for (size_t i = 0; outputs_match && i < out_on->size(); ++i) {
    outputs_match =
        out_on->record(i).ToString() == out_off->record(i).ToString();
  }
  double ratio = on.interp_instructions > 0
                     ? static_cast<double>(off.interp_instructions) /
                           static_cast<double>(on.interp_instructions)
                     : 0.0;
  bool ok = outputs_match && ratio >= 2.0 && on.fused_chains > 0;
  std::printf(
      "fused_chains=%lld  instr ratio=%.3f (need >= 2.0)  outputs_match=%s\n",
      static_cast<long long>(on.fused_chains), ratio,
      outputs_match ? "true" : "false");

  const char* path = "BENCH_spec_smoke.json";
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"spec_smoke\",\n"
               "  \"workload\": \"%s\",\n"
               "  \"interp_instructions_specialized\": %lld,\n"
               "  \"interp_instructions_interpreted\": %lld,\n"
               "  \"instruction_ratio\": %.6f,\n"
               "  \"fused_chains\": %lld,\n"
               "  \"specialized_instructions_saved\": %lld,\n"
               "  \"projected_fields_skipped\": %lld,\n"
               "  \"output_rows\": %zu,\n"
               "  \"outputs_match\": %s,\n"
               "  \"ok\": %s\n}\n",
               w.name.c_str(),
               static_cast<long long>(on.interp_instructions),
               static_cast<long long>(off.interp_instructions), ratio,
               static_cast<long long>(on.fused_chains),
               static_cast<long long>(on.specialized_instructions_saved),
               static_cast<long long>(on.projected_fields_skipped),
               out_on->size(), outputs_match ? "true" : "false",
               ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path);

  if (!ok) {
    std::fprintf(stderr,
                 "specialization smoke FAILED: ratio %.3f, outputs_match %d, "
                 "fused_chains %lld\n",
                 ratio, outputs_match ? 1 : 0,
                 static_cast<long long>(on.fused_chains));
    return 1;
  }
  return 0;
}
