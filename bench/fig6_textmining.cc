// Figure 6: normalized cost estimates and execution runtimes for 10 plans
// picked in regular rank intervals from the 24-alternative text-mining plan
// space. The paper reports an ~order-of-magnitude gap between the best plans
// (cheap selective extractors first) and the worst (expensive annotators on
// the full corpus).

#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/textmining.h"

int main() {
  using namespace blackbox;

  workloads::TextMiningScale scale;
  scale.documents = 20000;
  workloads::Workload w = workloads::MakeTextMining(scale);

  bench::BenchConfig config;
  config.picks = 10;
  config.reps = 2;
  StatusOr<bench::FigureResult> fig = bench::RunRankedFigure(w, config);
  if (!fig.ok()) {
    std::fprintf(stderr, "error: %s\n", fig.status().ToString().c_str());
    return 1;
  }
  bench::PrintFigure(
      "Figure 6 — text mining: normalized cost estimate vs. execution "
      "runtime (10 rank-picked plans of 24)",
      *fig);

  Status json = bench::WriteBenchJson("fig6_textmining", *fig);
  if (!json.ok()) {
    std::fprintf(stderr, "error: %s\n", json.ToString().c_str());
    return 1;
  }

  std::printf("best plan (operator order bottom-up):\n%s\n",
              reorder::PlanToString(fig->program.ranked()[0].logical,
                                    w.flow)
                  .c_str());
  std::printf("worst plan:\n%s\n",
              reorder::PlanToString(fig->program.ranked().back().logical,
                                    w.flow)
                  .c_str());
  return 0;
}
