// §7.3 "Enumeration Time": plan enumeration took < 1654 ms for every
// evaluation task with the naive (enumerate-all-then-cost) implementation.
// This driver measures that naive closure pipeline against the ranked
// anytime search (DESIGN.md §3.4) on the three seed workloads and writes
// BENCH_enum_time.json: per-workload closure vs ranked optimize wall,
// search counters (plans enumerated / pruned / stopped_early), and whether
// the ranked top-1 reaches the closure's best cost.
//
// Flags: --top-k N      ranked alternatives to keep (default 8)
//        --cache-warm   also measure plan-cache cold vs warm optimize wall
//        --reps N       wall-clock repetitions, best kept (default 5)

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/annotation_provider.h"
#include "api/optimized_program.h"
#include "optimizer/plan_cache.h"
#include "workloads/clickstream.h"
#include "workloads/textmining.h"
#include "workloads/tpch.h"
#include "workloads/workload.h"

namespace {

using namespace blackbox;

struct ModeResult {
  api::OptimizedProgram program;
  double wall_seconds = 0;  // best of reps
};

struct WorkloadResult {
  std::string name;
  ModeResult closure;
  ModeResult ranked;
  bool best_cost_equal = false;
  double speedup = 0;  // closure wall / ranked wall
  // --cache-warm only:
  bool cache_measured = false;
  double cache_cold_wall = 0;
  double cache_warm_wall = 0;
  bool cache_warm_hit = false;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One optimize under `options`, repeated `reps` times; keeps the fastest
/// wall and the last program.
StatusOr<ModeResult> Measure(const workloads::Workload& w,
                             const api::OptimizeOptions& options, int reps) {
  ModeResult out;
  for (int r = 0; r < reps; ++r) {
    double t0 = Now();
    StatusOr<api::OptimizedProgram> program =
        api::OptimizeFlow(w.flow, api::ScaProvider(), options);
    if (!program.ok()) return program.status();
    double wall = Now() - t0;
    if (r == 0 || wall < out.wall_seconds) out.wall_seconds = wall;
    out.program = std::move(program).value();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int top_k = 8;
  int reps = 5;
  bool cache_warm = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top-k") == 0 && i + 1 < argc) {
      top_k = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--cache-warm") == 0) cache_warm = true;
  }

  workloads::TpchScale tpch;
  tpch.lineitems = 1000;
  tpch.orders = 200;
  tpch.customers = 50;
  tpch.suppliers = 20;
  workloads::ClickstreamScale click;
  click.sessions = 100;
  workloads::TextMiningScale mining;
  mining.documents = 100;

  std::vector<workloads::Workload> tasks;
  tasks.push_back(workloads::MakeClickstream(click));
  tasks.push_back(workloads::MakeTpchQ7(tpch));
  tasks.push_back(workloads::MakeTextMining(mining));
  const char* names[] = {"clickstream", "tpch_q7", "textmining"};

  std::vector<WorkloadResult> results;
  for (size_t i = 0; i < tasks.size(); ++i) {
    WorkloadResult wr;
    wr.name = names[i];

    api::OptimizeOptions closure_opts;
    closure_opts.search = core::SearchMode::kClosure;
    closure_opts.use_plan_cache = false;
    StatusOr<ModeResult> closure = Measure(tasks[i], closure_opts, reps);
    if (!closure.ok()) {
      std::fprintf(stderr, "closure optimize %s: %s\n", wr.name.c_str(),
                   closure.status().ToString().c_str());
      return 1;
    }
    wr.closure = std::move(closure).value();

    api::OptimizeOptions ranked_opts;
    ranked_opts.search = core::SearchMode::kRanked;
    ranked_opts.top_k = top_k;
    ranked_opts.use_plan_cache = false;
    StatusOr<ModeResult> ranked = Measure(tasks[i], ranked_opts, reps);
    if (!ranked.ok()) {
      std::fprintf(stderr, "ranked optimize %s: %s\n", wr.name.c_str(),
                   ranked.status().ToString().c_str());
      return 1;
    }
    wr.ranked = std::move(ranked).value();

    double cb = wr.closure.program.best().cost;
    double rb = wr.ranked.program.best().cost;
    wr.best_cost_equal =
        std::fabs(cb - rb) <= 1e-9 * std::max(1.0, std::fabs(cb));
    wr.speedup = wr.ranked.wall_seconds > 0
                     ? wr.closure.wall_seconds / wr.ranked.wall_seconds
                     : 0;

    if (cache_warm) {
      // Cold: empty cache, full optimize + insert. Warm: same key, the
      // whole pipeline (annotate + search + cost) is skipped.
      optimizer::PlanCache::Global().Clear();
      api::OptimizeOptions cache_opts = ranked_opts;
      cache_opts.use_plan_cache = true;
      double t0 = Now();
      StatusOr<api::OptimizedProgram> cold =
          api::OptimizeFlow(tasks[i].flow, api::ScaProvider(), cache_opts);
      double cold_wall = Now() - t0;
      if (!cold.ok()) {
        std::fprintf(stderr, "cold optimize %s: %s\n", wr.name.c_str(),
                     cold.status().ToString().c_str());
        return 1;
      }
      t0 = Now();
      StatusOr<api::OptimizedProgram> warm =
          api::OptimizeFlow(tasks[i].flow, api::ScaProvider(), cache_opts);
      double warm_wall = Now() - t0;
      if (!warm.ok()) {
        std::fprintf(stderr, "warm optimize %s: %s\n", wr.name.c_str(),
                     warm.status().ToString().c_str());
        return 1;
      }
      wr.cache_measured = true;
      wr.cache_cold_wall = cold_wall;
      wr.cache_warm_wall = warm_wall;
      wr.cache_warm_hit = warm->from_plan_cache();
    }

    std::printf(
        "%-12s closure %4zu plans %8.3f ms | ranked(k=%d) costed %zu "
        "pruned %zu%s %8.3f ms | speedup %5.1fx best_cost_equal=%s\n",
        wr.name.c_str(), wr.closure.program.plans_enumerated(),
        wr.closure.wall_seconds * 1e3, top_k,
        wr.ranked.program.plans_enumerated(),
        wr.ranked.program.plans_pruned(),
        wr.ranked.program.stopped_early() ? " early-stop" : "",
        wr.ranked.wall_seconds * 1e3, wr.speedup,
        wr.best_cost_equal ? "true" : "false");
    if (wr.cache_measured) {
      std::printf(
          "%-12s cache cold %8.3f ms warm %8.3f ms hit=%s\n", wr.name.c_str(),
          wr.cache_cold_wall * 1e3, wr.cache_warm_wall * 1e3,
          wr.cache_warm_hit ? "true" : "false");
    }
    results.push_back(std::move(wr));
  }

  bool ok = true;
  for (const WorkloadResult& wr : results) {
    if (!wr.best_cost_equal) ok = false;
    if (wr.cache_measured && !wr.cache_warm_hit) ok = false;
  }

  std::FILE* f = std::fopen("BENCH_enum_time.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_enum_time.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"enum_time\",\n");
  std::fprintf(f, "  \"top_k\": %d,\n", top_k);
  std::fprintf(f, "  \"reps\": %d,\n", reps);
  std::fprintf(f, "  \"cache_warm\": %s,\n", cache_warm ? "true" : "false");
  std::fprintf(f, "  \"workloads\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& wr = results[i];
    std::fprintf(f, "    {\"workload\": \"%s\",\n", wr.name.c_str());
    std::fprintf(f,
                 "     \"closure\": {\"alternatives\": %zu, "
                 "\"plans_enumerated\": %zu, \"optimize_wall_seconds\": %.6f, "
                 "\"enumeration_seconds\": %.6f, \"costing_seconds\": %.6f, "
                 "\"best_cost\": %.6f},\n",
                 wr.closure.program.num_alternatives(),
                 wr.closure.program.plans_enumerated(),
                 wr.closure.wall_seconds,
                 wr.closure.program.enumeration_seconds(),
                 wr.closure.program.costing_seconds(),
                 wr.closure.program.best().cost);
    std::fprintf(f,
                 "     \"ranked\": {\"alternatives\": %zu, "
                 "\"plans_enumerated\": %zu, \"plans_pruned\": %zu, "
                 "\"stopped_early\": %s, \"optimize_wall_seconds\": %.6f, "
                 "\"best_cost\": %.6f},\n",
                 wr.ranked.program.num_alternatives(),
                 wr.ranked.program.plans_enumerated(),
                 wr.ranked.program.plans_pruned(),
                 wr.ranked.program.stopped_early() ? "true" : "false",
                 wr.ranked.wall_seconds, wr.ranked.program.best().cost);
    std::fprintf(f, "     \"best_cost_equal\": %s,\n",
                 wr.best_cost_equal ? "true" : "false");
    std::fprintf(f, "     \"ranked_speedup\": %.3f%s\n", wr.speedup,
                 wr.cache_measured ? "," : "");
    if (wr.cache_measured) {
      std::fprintf(f,
                   "     \"cache\": {\"cold_wall_seconds\": %.6f, "
                   "\"warm_wall_seconds\": %.6f, \"warm_hit\": %s, "
                   "\"speedup\": %.3f}\n",
                   wr.cache_cold_wall, wr.cache_warm_wall,
                   wr.cache_warm_hit ? "true" : "false",
                   wr.cache_warm_wall > 0
                       ? wr.cache_cold_wall / wr.cache_warm_wall
                       : 0);
    }
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"ok\": %s\n", ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);

  if (!ok) {
    std::fprintf(stderr,
                 "enum_time FAILED: ranked top-1 missed the closure best "
                 "cost, or a warm cache lookup missed\n");
    return 1;
  }
  std::printf("enum_time OK — wrote BENCH_enum_time.json\n");
  return 0;
}
