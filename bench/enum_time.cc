// §7.3 "Enumeration Time": plan enumeration took < 1654 ms for every
// evaluation task with the naive (enumerate-all-then-cost) implementation,
// and the overhead of static code analysis is "virtually zero". This
// google-benchmark binary measures enumeration, SCA, and full optimization
// time for all four tasks.

#include <benchmark/benchmark.h>

#include "api/optimized_program.h"
#include "dataflow/annotate.h"
#include "enumerate/enumerate.h"
#include "sca/analyzer.h"
#include "workloads/clickstream.h"
#include "workloads/textmining.h"
#include "workloads/tpch.h"

namespace {

using namespace blackbox;

workloads::Workload MakeTask(int task) {
  workloads::TpchScale small;
  small.lineitems = 1000;
  small.orders = 200;
  small.customers = 50;
  small.suppliers = 20;
  workloads::ClickstreamScale cs;
  cs.sessions = 100;
  workloads::TextMiningScale tm;
  tm.documents = 100;
  switch (task) {
    case 0:
      return workloads::MakeClickstream(cs);
    case 1:
      return workloads::MakeTpchQ7(small);
    case 2:
      return workloads::MakeTpchQ15(small);
    default:
      return workloads::MakeTextMining(tm);
  }
}

void BM_Enumerate(benchmark::State& state) {
  workloads::Workload w = MakeTask(static_cast<int>(state.range(0)));
  StatusOr<dataflow::AnnotatedFlow> af =
      dataflow::Annotate(w.flow, dataflow::AnnotationMode::kSca);
  if (!af.ok()) {
    state.SkipWithError(af.status().ToString().c_str());
    return;
  }
  size_t plans = 0;
  for (auto _ : state) {
    StatusOr<enumerate::EnumResult> r = enumerate::EnumerateAlternatives(*af);
    benchmark::DoNotOptimize(r);
    plans = r.ok() ? r->plans.size() : 0;
  }
  state.counters["plans"] = static_cast<double>(plans);
  state.SetLabel(w.name);
}
BENCHMARK(BM_Enumerate)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_StaticCodeAnalysis(benchmark::State& state) {
  // SCA of every UDF in the task — the paper: "virtually zero" overhead.
  workloads::Workload w = MakeTask(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (int i = 0; i < w.flow.num_ops(); ++i) {
      const dataflow::Operator& op = w.flow.op(i);
      if (!op.udf) continue;
      StatusOr<sca::LocalUdfSummary> s = sca::AnalyzeUdf(*op.udf);
      benchmark::DoNotOptimize(s);
    }
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_StaticCodeAnalysis)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_FullOptimization(benchmark::State& state) {
  // Annotate + enumerate + cost every alternative (the naive §7.3 pipeline),
  // through the api facade.
  workloads::Workload w = MakeTask(static_cast<int>(state.range(0)));
  api::ScaProvider provider;
  for (auto _ : state) {
    StatusOr<api::OptimizedProgram> r = api::OptimizeFlow(w.flow, provider);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_FullOptimization)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
