// Figure 5: normalized cost estimates and execution runtimes for 10 plans
// picked in regular rank intervals from the TPC-H Q7 plan space. The paper
// reports 2518 alternatives and a ~7x worst/best runtime gap, with cost
// estimates tracking runtimes; this harness regenerates the same series on
// the simulated cluster (absolute counts differ — see EXPERIMENTS.md).
//
// Also prints Figure 2 (implemented vs 1st-ranked flow), measures end-to-end
// optimize+run wall time at 1 and 8 worker threads, and writes the whole
// series to BENCH_fig5_tpch_q7.json for the CI perf trajectory.
//
// Flags: --smoke         reduced scale + fewer picks (the CI smoke config).
//        --no-chain      disable fused operator chains (materialize-
//                        everything execution; byte meters identical,
//                        peak_bytes higher — and under a tight budget, more
//                        spilling).
//        --mem-budget N  per-instance memory budget in bytes; breakers
//                        exceeding it spill for real (DESIGN.md §2.3). The
//                        JSON name gains a _budgetN suffix so CI's
//                        spill-smoke run sits next to the default one.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "reorder/plan.h"
#include "workloads/tpch.h"

int main(int argc, char** argv) {
  using namespace blackbox;

  bool smoke = false;
  bool no_chain = false;
  long long mem_budget = 0;  // 0: keep the BenchConfig default
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--no-chain") == 0) no_chain = true;
    if (std::strcmp(argv[i], "--mem-budget") == 0 && i + 1 < argc) {
      mem_budget = std::atoll(argv[++i]);
    }
  }

  // Smoke keeps the full data scale and economizes on picks/reps instead:
  // the spill-smoke acceptance point (32 KiB per instance) needs the l⋈o
  // build side genuinely over budget so run-level data skipping has spilled
  // runs to refute — a scaled-down orders table never spills there and the
  // skipping meters would pin zeros.
  workloads::TpchScale scale;
  scale.lineitems = 60000;
  scale.orders = 15000;
  scale.customers = 1500;
  scale.suppliers = 100;
  workloads::Workload w = workloads::MakeTpchQ7(scale);

  bench::BenchConfig config;
  config.picks = smoke ? 5 : 10;
  config.reps = smoke ? 1 : 2;
  config.exec.fuse_chains = !no_chain;
  if (mem_budget > 0) {
    config.exec.mem_budget_bytes = static_cast<double>(mem_budget);
  }
  StatusOr<bench::FigureResult> fig = bench::RunRankedFigure(w, config);
  if (!fig.ok()) {
    std::fprintf(stderr, "error: %s\n", fig.status().ToString().c_str());
    return 1;
  }
  bench::PrintFigure(
      std::string("Figure 5 — TPC-H Q7: normalized cost estimate vs. "
                  "execution runtime (rank-picked plans") +
          (smoke ? ", smoke scale)" : ")"),
      *fig);

  // End-to-end optimize+run wall time, serial vs 8 worker threads. The
  // results are identical by the determinism contract; only wall time moves.
  StatusOr<bench::ThreadScaling> scaling =
      bench::MeasureThreadScaling(w, config, 8);
  if (!scaling.ok()) {
    std::fprintf(stderr, "error: %s\n", scaling.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "optimize+run wall time: %.3fs at 1 thread, %.3fs at %d threads "
      "(speedup %.2fx)\n\n",
      scaling->serial.total_seconds(), scaling->parallel.total_seconds(),
      scaling->parallel.threads, scaling->speedup);

  // Memory-budget sweep of the best plan: measured disk/peak per budget,
  // pinned by tools/bench_baseline.py against silent drift.
  Status json = bench::WriteFigureJsonWithSweep("fig5_tpch_q7", mem_budget,
                                                &*fig, &*scaling);
  if (!json.ok()) {
    std::fprintf(stderr, "error: %s\n", json.ToString().c_str());
    return 1;
  }

  int implemented = bench::ImplementedRank(fig->program);
  std::printf("Figure 2(a) — implemented data flow (rank %d):\n%s\n",
              implemented,
              reorder::PlanToString(reorder::PlanFromFlow(w.flow), w.flow)
                  .c_str());
  std::printf("Figure 2(b) — 1st-ranked data flow:\n%s\n",
              reorder::PlanToString(fig->program.ranked()[0].logical,
                                    w.flow)
                  .c_str());
  std::printf("1st-ranked physical plan:\n%s\n",
              fig->program.ranked()[0].physical.ToString(w.flow).c_str());
  return 0;
}
