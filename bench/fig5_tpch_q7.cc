// Figure 5: normalized cost estimates and execution runtimes for 10 plans
// picked in regular rank intervals from the TPC-H Q7 plan space. The paper
// reports 2518 alternatives and a ~7x worst/best runtime gap, with cost
// estimates tracking runtimes; this harness regenerates the same series on
// the simulated cluster (absolute counts differ — see EXPERIMENTS.md).
//
// Also prints Figure 2: the implemented flow vs. the 1st-ranked (bushy) flow.

#include <cstdio>

#include "bench/bench_util.h"
#include "reorder/plan.h"
#include "workloads/tpch.h"

int main() {
  using namespace blackbox;

  workloads::TpchScale scale;
  scale.lineitems = 60000;
  scale.orders = 15000;
  scale.customers = 1500;
  scale.suppliers = 100;
  workloads::Workload w = workloads::MakeTpchQ7(scale);

  bench::BenchConfig config;
  config.picks = 10;
  config.reps = 2;
  StatusOr<bench::FigureResult> fig = bench::RunRankedFigure(w, config);
  if (!fig.ok()) {
    std::fprintf(stderr, "error: %s\n", fig.status().ToString().c_str());
    return 1;
  }
  bench::PrintFigure(
      "Figure 5 — TPC-H Q7: normalized cost estimate vs. execution runtime "
      "(10 rank-picked plans)",
      *fig);

  int implemented = bench::ImplementedRank(fig->program);
  std::printf("Figure 2(a) — implemented data flow (rank %d):\n%s\n",
              implemented,
              reorder::PlanToString(reorder::PlanFromFlow(w.flow), w.flow)
                  .c_str());
  std::printf("Figure 2(b) — 1st-ranked data flow:\n%s\n",
              reorder::PlanToString(fig->program.ranked()[0].logical,
                                    w.flow)
                  .c_str());
  std::printf("1st-ranked physical plan:\n%s\n",
              fig->program.ranked()[0].physical.ToString(w.flow).c_str());
  return 0;
}
