#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>

namespace blackbox {
namespace bench {

StatusOr<FigureResult> RunRankedFigure(const workloads::Workload& w,
                                       const BenchConfig& config) {
  api::ScaProvider sca;
  const api::AnnotationProvider& provider =
      config.provider ? *config.provider : sca;
  api::OptimizeOptions options;
  options.exec = config.exec;

  // Bind up front so hint providers that execute the flow (ProfilerProvider)
  // work through the harness; the bindings carry into the program for Run().
  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;

  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, provider, options, sources);
  if (!program.ok()) return program.status();

  FigureResult fig;
  fig.program = std::move(program).value();
  const size_t n = fig.program.ranked().size();

  // Regular rank intervals, always including the best and worst plan.
  std::vector<size_t> indices;
  size_t count = std::min<size_t>(config.picks, n);
  for (size_t k = 0; k < count; ++k) {
    size_t idx = count == 1 ? 0 : k * (n - 1) / (count - 1);
    if (indices.empty() || indices.back() != idx) indices.push_back(idx);
  }

  for (size_t idx : indices) {
    const core::PlannedAlternative& alt = fig.program.ranked()[idx];
    RankedRun run;
    run.rank = alt.rank;
    run.est_cost = alt.cost;
    for (int rep = 0; rep < config.reps; ++rep) {
      engine::ExecStats stats;
      StatusOr<DataSet> out = fig.program.Run(idx, &stats);
      if (!out.ok()) return out.status();
      fig.output_rows = out->size();
      if (rep == 0 || stats.simulated_seconds < run.runtime_seconds) {
        run.runtime_seconds = stats.simulated_seconds;
        run.stats = stats;
      }
    }
    fig.runs.push_back(run);
  }

  double min_cost = fig.runs.front().est_cost;
  double min_runtime = fig.runs.front().runtime_seconds;
  for (const RankedRun& r : fig.runs) {
    min_cost = std::min(min_cost, r.est_cost);
    min_runtime = std::min(min_runtime, r.runtime_seconds);
  }
  for (RankedRun& r : fig.runs) {
    r.norm_cost = min_cost > 0 ? r.est_cost / min_cost : 0;
    r.norm_runtime = min_runtime > 0 ? r.runtime_seconds / min_runtime : 0;
  }
  return fig;
}

void PrintFigure(const std::string& title, const FigureResult& result) {
  std::printf("%s\n", title.c_str());
  std::printf(
      "  alternatives enumerated: %zu (enumeration %.1f ms, costing %.1f "
      "ms)\n",
      result.program.num_alternatives(),
      result.program.enumeration_seconds() * 1e3,
      result.program.costing_seconds() * 1e3);
  std::printf("  %-6s %-15s %-18s %-11s %-9s %-9s %-10s %-10s\n", "rank",
              "norm.cost.est", "norm.exec.runtime", "runtime[s]", "cpu[s]",
              "net[MB]", "disk[MB]", "udf calls");
  for (const RankedRun& r : result.runs) {
    std::printf("  %-6d %-15.2f %-18.2f %-11.3f %-9.3f %-9.3f %-10.3f %-10lld\n",
                r.rank, r.norm_cost, r.norm_runtime, r.runtime_seconds,
                r.stats.wall_seconds,
                static_cast<double>(r.stats.network_bytes) / (1 << 20),
                static_cast<double>(r.stats.disk_bytes) / (1 << 20),
                static_cast<long long>(r.stats.udf_calls));
  }
  std::printf("  output rows: %zu\n\n", result.output_rows);
}

int ImplementedRank(const api::OptimizedProgram& program) {
  int idx = program.ImplementedIndex();
  return idx < 0 ? -1 : program.ranked()[idx].rank;
}

}  // namespace bench
}  // namespace blackbox
