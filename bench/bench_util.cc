#include "bench/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace blackbox {
namespace bench {

namespace {

void CountNode(const optimizer::PhysicalNode& n, int* merge, int* comb) {
  if (n.local == optimizer::LocalStrategy::kSortMergeJoin) ++*merge;
  if (n.local == optimizer::LocalStrategy::kPreAggregate) ++*comb;
  for (const auto& c : n.children) CountNode(*c, merge, comb);
}

}  // namespace

StrategyMix CountStrategyMix(const api::OptimizedProgram& program) {
  StrategyMix mix;
  for (size_t i = 0; i < program.ranked().size(); ++i) {
    int merge = 0, comb = 0;
    CountNode(*program.ranked()[i].physical.root, &merge, &comb);
    if (merge > 0) ++mix.sort_merge_plans;
    if (comb > 0) ++mix.combiner_plans;
    if (i == 0) {
      mix.best_uses_sort_merge = merge > 0;
      mix.best_uses_combiner = comb > 0;
    }
  }
  return mix;
}

StatusOr<FigureResult> RunRankedFigure(const workloads::Workload& w,
                                       const BenchConfig& config) {
  api::ScaProvider sca;
  const api::AnnotationProvider& provider =
      config.provider ? *config.provider : sca;
  api::OptimizeOptions options;
  options.exec = config.exec;
  options.exec.num_threads = config.num_threads;  // costing inherits this
  // The figures sample plans at regular rank intervals across the WHOLE
  // plan space (the paper's Figures 5-7 methodology), so they need the
  // full closure, not a ranked top-k; and they measure optimization, so
  // the plan cache must not short-circuit it.
  options.search = core::SearchMode::kClosure;
  options.use_plan_cache = false;

  // Bind up front so hint providers that execute the flow (ProfilerProvider)
  // work through the harness; the bindings carry into the program for Run().
  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;

  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, provider, options, sources);
  if (!program.ok()) return program.status();

  FigureResult fig;
  fig.program = std::move(program).value();
  const size_t n = fig.program.ranked().size();

  // Regular rank intervals, always including the best and worst plan.
  std::vector<size_t> indices;
  size_t count = std::min<size_t>(config.picks, n);
  for (size_t k = 0; k < count; ++k) {
    size_t idx = count == 1 ? 0 : k * (n - 1) / (count - 1);
    if (indices.empty() || indices.back() != idx) indices.push_back(idx);
  }

  for (size_t idx : indices) {
    const core::PlannedAlternative& alt = fig.program.ranked()[idx];
    RankedRun run;
    run.rank = alt.rank;
    run.est_cost = alt.cost;
    for (int rep = 0; rep < config.reps; ++rep) {
      engine::ExecStats stats;
      StatusOr<DataSet> out = fig.program.Run(idx, &stats);
      if (!out.ok()) return out.status();
      fig.output_rows = out->size();
      if (rep == 0 || stats.simulated_seconds < run.runtime_seconds) {
        run.runtime_seconds = stats.simulated_seconds;
        run.stats = stats;
      }
    }
    fig.runs.push_back(run);
  }

  double min_cost = fig.runs.front().est_cost;
  double min_runtime = fig.runs.front().runtime_seconds;
  for (const RankedRun& r : fig.runs) {
    min_cost = std::min(min_cost, r.est_cost);
    min_runtime = std::min(min_runtime, r.runtime_seconds);
  }
  for (RankedRun& r : fig.runs) {
    r.norm_cost = min_cost > 0 ? r.est_cost / min_cost : 0;
    r.norm_runtime = min_runtime > 0 ? r.runtime_seconds / min_runtime : 0;
  }
  return fig;
}

void PrintFigure(const std::string& title, const FigureResult& result) {
  std::printf("%s\n", title.c_str());
  std::printf(
      "  alternatives enumerated: %zu (enumeration %.1f ms, costing %.1f "
      "ms)\n",
      result.program.num_alternatives(),
      result.program.enumeration_seconds() * 1e3,
      result.program.costing_seconds() * 1e3);
  StrategyMix mix = CountStrategyMix(result.program);
  std::printf(
      "  strategy mix: %d plans with sort-merge join, %d with combiner "
      "(best plan: merge=%s combiner=%s)\n",
      mix.sort_merge_plans, mix.combiner_plans,
      mix.best_uses_sort_merge ? "yes" : "no",
      mix.best_uses_combiner ? "yes" : "no");
  std::printf("  %-6s %-15s %-18s %-11s %-9s %-9s %-10s %-9s %-10s\n", "rank",
              "norm.cost.est", "norm.exec.runtime", "runtime[s]", "cpu[s]",
              "net[MB]", "disk[MB]", "peak[MB]", "udf calls");
  for (const RankedRun& r : result.runs) {
    std::printf(
        "  %-6d %-15.2f %-18.2f %-11.3f %-9.3f %-9.3f %-10.3f %-9.3f %-10lld\n",
        r.rank, r.norm_cost, r.norm_runtime, r.runtime_seconds,
        r.stats.wall_seconds,
        static_cast<double>(r.stats.network_bytes) / (1 << 20),
        static_cast<double>(r.stats.disk_bytes) / (1 << 20),
        static_cast<double>(r.stats.peak_bytes) / (1 << 20),
        static_cast<long long>(r.stats.udf_calls));
  }
  std::printf("  output rows: %zu\n\n", result.output_rows);
}

int ImplementedRank(const api::OptimizedProgram& program) {
  int idx = program.ImplementedIndex();
  return idx < 0 ? -1 : program.ranked()[idx].rank;
}

namespace {

StatusOr<ThreadScalingPoint> MeasurePoint(const workloads::Workload& w,
                                          const BenchConfig& config,
                                          int threads) {
  api::ScaProvider sca;
  const api::AnnotationProvider& provider =
      config.provider ? *config.provider : sca;
  api::OptimizeOptions options;
  options.exec = config.exec;
  options.exec.num_threads = threads;  // costing inherits this
  // Thread scaling measures the closure costing pipeline's parallelism;
  // a cache hit (or the serial ranked search) would fake the speedup.
  options.search = core::SearchMode::kClosure;
  options.use_plan_cache = false;
  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;

  ThreadScalingPoint point;
  point.threads = threads;
  auto t0 = std::chrono::steady_clock::now();
  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, provider, options, sources);
  if (!program.ok()) return program.status();
  auto t1 = std::chrono::steady_clock::now();
  StatusOr<DataSet> out = program->RunBest();
  if (!out.ok()) return out.status();
  auto t2 = std::chrono::steady_clock::now();
  point.optimize_seconds = std::chrono::duration<double>(t1 - t0).count();
  point.run_seconds = std::chrono::duration<double>(t2 - t1).count();
  return point;
}

}  // namespace

StatusOr<ThreadScaling> MeasureThreadScaling(const workloads::Workload& w,
                                             const BenchConfig& config,
                                             int threads) {
  ThreadScaling scaling;
  StatusOr<ThreadScalingPoint> serial = MeasurePoint(w, config, 1);
  if (!serial.ok()) return serial.status();
  scaling.serial = *serial;
  StatusOr<ThreadScalingPoint> parallel = MeasurePoint(w, config, threads);
  if (!parallel.ok()) return parallel.status();
  scaling.parallel = *parallel;
  scaling.speedup = scaling.parallel.total_seconds() > 0
                        ? scaling.serial.total_seconds() /
                              scaling.parallel.total_seconds()
                        : 0;
  return scaling;
}

Status WriteFigureJsonWithSweep(const std::string& base_name,
                                long long mem_budget_flag, FigureResult* fig,
                                const ThreadScaling* scaling) {
  StatusOr<std::vector<BudgetSweepPoint>> sweep =
      RunBudgetSweep(fig, DefaultBudgetSweep());
  if (!sweep.ok()) return sweep.status();
  std::printf("budget sweep (best plan):\n");
  for (const BudgetSweepPoint& p : *sweep) {
    std::printf(
        "  budget %10.0f B  disk %8.3f MB  peak %8.3f MB  "
        "skipped %4lld batches / %8.3f MB spill\n",
        p.budget_bytes, static_cast<double>(p.disk_bytes) / (1 << 20),
        static_cast<double>(p.peak_bytes) / (1 << 20), p.skipped_batches,
        static_cast<double>(p.skipped_spill_bytes) / (1 << 20));
  }
  std::printf("\n");
  std::string name = base_name;
  if (mem_budget_flag > 0) {
    name += "_budget" + std::to_string(mem_budget_flag);
  }
  return WriteBenchJson(name, *fig, scaling, &*sweep);
}

std::vector<double> DefaultBudgetSweep() {
  // Effectively unbounded, then tightening until even the best-ranked plan
  // (which the optimizer chose partly for its small breakers) must spill.
  return {static_cast<double>(1 << 30), static_cast<double>(256 << 10),
          static_cast<double>(32 << 10), static_cast<double>(8 << 10)};
}

StatusOr<std::vector<BudgetSweepPoint>> RunBudgetSweep(
    FigureResult* fig, const std::vector<double>& budgets) {
  engine::ExecOptions saved = fig->program.exec_options();
  std::vector<BudgetSweepPoint> points;
  for (double budget : budgets) {
    fig->program.mutable_exec_options().mem_budget_bytes = budget;
    engine::ExecStats stats;
    StatusOr<DataSet> out = fig->program.RunBest(&stats);
    if (!out.ok()) {
      fig->program.mutable_exec_options() = saved;
      return out.status();
    }
    BudgetSweepPoint p;
    p.budget_bytes = budget;
    p.simulated_seconds = stats.simulated_seconds;
    p.disk_bytes = static_cast<long long>(stats.disk_bytes);
    p.peak_bytes = static_cast<long long>(stats.peak_bytes);
    p.skipped_batches = static_cast<long long>(stats.skipped_batches);
    p.skipped_spill_bytes =
        static_cast<long long>(stats.skipped_spill_bytes);
    points.push_back(p);
  }
  fig->program.mutable_exec_options() = saved;
  return points;
}

Status WriteBenchJson(const std::string& name, const FigureResult& result,
                      const ThreadScaling* scaling,
                      const std::vector<BudgetSweepPoint>* sweep) {
  std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return Status::Internal("cannot open " + path + " for writing");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", name.c_str());
  std::fprintf(f, "  \"mem_budget_bytes\": %.0f,\n",
               result.program.exec_options().mem_budget_bytes);
  std::fprintf(f, "  \"alternatives\": %zu,\n",
               result.program.num_alternatives());
  std::fprintf(f, "  \"truncated\": %s,\n",
               result.program.truncated() ? "true" : "false");
  std::fprintf(f, "  \"implemented_rank\": %d,\n",
               ImplementedRank(result.program));
  std::fprintf(f, "  \"enumeration_seconds\": %.6f,\n",
               result.program.enumeration_seconds());
  std::fprintf(f, "  \"costing_seconds\": %.6f,\n",
               result.program.costing_seconds());
  std::fprintf(f, "  \"output_rows\": %zu,\n", result.output_rows);
  StrategyMix mix = CountStrategyMix(result.program);
  std::fprintf(f, "  \"sort_merge_plans\": %d,\n", mix.sort_merge_plans);
  std::fprintf(f, "  \"combiner_plans\": %d,\n", mix.combiner_plans);
  std::fprintf(f, "  \"best_uses_sort_merge\": %s,\n",
               mix.best_uses_sort_merge ? "true" : "false");
  std::fprintf(f, "  \"best_uses_combiner\": %s,\n",
               mix.best_uses_combiner ? "true" : "false");
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < result.runs.size(); ++i) {
    const RankedRun& r = result.runs[i];
    std::fprintf(f,
                 "    {\"rank\": %d, \"estimated_cost\": %.6f, "
                 "\"norm_cost\": %.4f, \"simulated_seconds\": %.6f, "
                 "\"norm_runtime\": %.4f, \"wall_seconds\": %.6f, "
                 "\"network_bytes\": %lld, \"disk_bytes\": %lld, "
                 "\"peak_bytes\": %lld, \"udf_calls\": %lld, "
                 "\"skipped_batches\": %lld, "
                 "\"skipped_spill_bytes\": %lld, "
                 "\"fused_chains\": %lld, "
                 "\"specialized_instructions_saved\": %lld, "
                 "\"projected_fields_skipped\": %lld}%s\n",
                 r.rank, r.est_cost, r.norm_cost, r.runtime_seconds,
                 r.norm_runtime, r.stats.wall_seconds,
                 static_cast<long long>(r.stats.network_bytes),
                 static_cast<long long>(r.stats.disk_bytes),
                 static_cast<long long>(r.stats.peak_bytes),
                 static_cast<long long>(r.stats.udf_calls),
                 static_cast<long long>(r.stats.skipped_batches),
                 static_cast<long long>(r.stats.skipped_spill_bytes),
                 static_cast<long long>(r.stats.fused_chains),
                 static_cast<long long>(r.stats.specialized_instructions_saved),
                 static_cast<long long>(r.stats.projected_fields_skipped),
                 i + 1 < result.runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]%s\n", (scaling || sweep) ? "," : "");
  if (scaling) {
    std::fprintf(f, "  \"thread_scaling\": {\n");
    std::fprintf(f,
                 "    \"serial\": {\"threads\": 1, \"optimize_seconds\": "
                 "%.6f, \"run_seconds\": %.6f, \"total_seconds\": %.6f},\n",
                 scaling->serial.optimize_seconds, scaling->serial.run_seconds,
                 scaling->serial.total_seconds());
    std::fprintf(f,
                 "    \"parallel\": {\"threads\": %d, \"optimize_seconds\": "
                 "%.6f, \"run_seconds\": %.6f, \"total_seconds\": %.6f},\n",
                 scaling->parallel.threads, scaling->parallel.optimize_seconds,
                 scaling->parallel.run_seconds,
                 scaling->parallel.total_seconds());
    std::fprintf(f, "    \"speedup\": %.3f\n", scaling->speedup);
    std::fprintf(f, "  }%s\n", sweep ? "," : "");
  }
  if (sweep) {
    // Best plan re-executed under tightening per-instance budgets: disk and
    // peak are measured, deterministic, and pinned by the bench baseline.
    std::fprintf(f, "  \"budget_sweep\": [\n");
    for (size_t i = 0; i < sweep->size(); ++i) {
      const BudgetSweepPoint& p = (*sweep)[i];
      std::fprintf(f,
                   "    {\"mem_budget_bytes\": %.0f, \"simulated_seconds\": "
                   "%.6f, \"disk_bytes\": %lld, \"peak_bytes\": %lld, "
                   "\"skipped_batches\": %lld, "
                   "\"skipped_spill_bytes\": %lld}%s\n",
                   p.budget_bytes, p.simulated_seconds, p.disk_bytes,
                   p.peak_bytes, p.skipped_batches, p.skipped_spill_bytes,
                   i + 1 < sweep->size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return Status::OK();
}

}  // namespace bench
}  // namespace blackbox
