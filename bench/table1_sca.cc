// Table 1: number of reordered alternatives enumerated with manually
// annotated read/write sets vs. sets automatically derived by static code
// analysis, for all four evaluation tasks. Paper values:
//
//   Clickstream   4      3 (75%)
//   TPC-H Q7      2518   2518 (100%)
//   TPC-H Q15     4      4 (100%)
//   Text Mining   24     24 (100%)

#include <cstdio>

#include "api/optimized_program.h"
#include "workloads/clickstream.h"
#include "workloads/textmining.h"
#include "workloads/tpch.h"

namespace {

using namespace blackbox;

size_t Count(const dataflow::DataFlow& flow,
             const api::AnnotationProvider& provider) {
  // Table 1 reports the size of the FULL reorder closure each annotation
  // source admits — the exhaustive search, not the anytime one.
  api::OptimizeOptions options;
  options.search = core::SearchMode::kClosure;
  options.use_plan_cache = false;
  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(flow, provider, options);
  if (!program.ok()) {
    std::fprintf(stderr, "error: %s\n", program.status().ToString().c_str());
    return 0;
  }
  return program->num_alternatives();
}

void Row(const char* task, const dataflow::DataFlow& flow, const char* paper) {
  size_t manual = Count(flow, api::ManualProvider());
  size_t sca = Count(flow, api::ScaProvider());
  std::printf("  %-14s %-18zu %zu (%.0f%%)%-6s paper: %s\n", task, manual, sca,
              manual ? 100.0 * sca / manual : 0, "", paper);
}

}  // namespace

int main() {
  std::printf(
      "Table 1 — enumerated orders: manual annotations vs. static code "
      "analysis\n");
  std::printf("  %-14s %-18s %-18s\n", "PACT Task", "Manual Annotation",
              "SCA");
  workloads::TpchScale small;
  small.lineitems = 1000;
  small.orders = 200;
  small.customers = 50;
  small.suppliers = 20;
  workloads::ClickstreamScale cs;
  cs.sessions = 200;
  workloads::TextMiningScale tm;
  tm.documents = 200;

  Row("Clickstream", workloads::MakeClickstream(cs).flow, "4 / 3 (75%)");
  Row("TPC-H Q7", workloads::MakeTpchQ7(small).flow, "2518 / 2518 (100%)");
  Row("TPC-H Q15", workloads::MakeTpchQ15(small).flow, "4 / 4 (100%)");
  Row("Text Mining", workloads::MakeTextMining(tm).flow, "24 / 24 (100%)");
  std::printf("\n");
  return 0;
}
