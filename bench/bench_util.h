// Shared harness for the figure benchmarks: optimize a workload through the
// api layer, pick plans at regular rank intervals (the paper's methodology
// for Figures 5-7), execute each against the generated data, and print
// normalized cost estimates next to normalized measured runtimes.

#ifndef BLACKBOX_BENCH_BENCH_UTIL_H_
#define BLACKBOX_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "api/optimized_program.h"
#include "workloads/workload.h"

namespace blackbox {
namespace bench {

struct RankedRun {
  int rank = 0;
  double est_cost = 0;
  double norm_cost = 0;     // cost / min cost
  double runtime_seconds = 0;  // simulated execution runtime (machine model)
  double norm_runtime = 0;     // runtime / min runtime
  engine::ExecStats stats;
};

struct FigureResult {
  api::OptimizedProgram program;
  std::vector<RankedRun> runs;
  size_t output_rows = 0;
};

/// Shared knobs for one figure run. The cost-model parameters (dop, memory
/// budget) follow the execution options (OptimizeOptions::
/// cost_model_follows_exec), so estimates and measured runs describe the same
/// simulated cluster.
struct BenchConfig {
  /// Annotation source; null means static code analysis.
  const api::AnnotationProvider* provider = nullptr;
  int picks = 10;  // plans sampled at regular rank intervals
  int reps = 3;    // repetitions per plan (the fastest run is reported)
  /// Worker threads for both plan costing and partition execution (the
  /// single thread knob — it overrides exec.num_threads). Results are
  /// thread-count-invariant (the determinism contract); this only moves
  /// real wall time.
  int num_threads = 1;
  engine::ExecOptions exec;

  BenchConfig() {
    exec.dop = 8;
    exec.mem_budget_bytes = 1 << 20;
  }
};

/// How often the new physical strategies appear in a ranked plan list — the
/// ablation-visible contribution of sort-order tracking and combiner
/// insertion, recorded in every BENCH_*.json.
struct StrategyMix {
  int sort_merge_plans = 0;  // ranked plans containing a sort-merge join
  int combiner_plans = 0;    // ranked plans containing a combiner
  bool best_uses_sort_merge = false;
  bool best_uses_combiner = false;
};

StrategyMix CountStrategyMix(const api::OptimizedProgram& program);

/// Optimizes `w`, picks plans in regular rank intervals (always including
/// rank 1 and the last rank), executes them, and returns the series.
StatusOr<FigureResult> RunRankedFigure(const workloads::Workload& w,
                                       const BenchConfig& config);

/// Prints the paper-style two-row series for a figure.
void PrintFigure(const std::string& title, const FigureResult& result);

/// 1-based rank of the originally implemented data flow, -1 if absent.
int ImplementedRank(const api::OptimizedProgram& program);

/// Real wall time of one end-to-end optimize (annotate + enumerate + cost)
/// plus one execution of the best-ranked plan, at a given thread count.
struct ThreadScalingPoint {
  int threads = 1;
  double optimize_seconds = 0;
  double run_seconds = 0;
  double total_seconds() const { return optimize_seconds + run_seconds; }
};

/// Serial vs parallel end-to-end wall time for one workload.
struct ThreadScaling {
  ThreadScalingPoint serial;    // num_threads = 1
  ThreadScalingPoint parallel;  // num_threads = threads
  double speedup = 0;           // serial total / parallel total
};

/// Measures optimize+run wall time at 1 and `threads` worker threads.
StatusOr<ThreadScaling> MeasureThreadScaling(const workloads::Workload& w,
                                             const BenchConfig& config,
                                             int threads);

/// One point of a memory-budget sweep: the best-ranked plan re-executed
/// under a different per-instance budget (DESIGN.md §2.3). disk_bytes is
/// the measured spill traffic, peak_bytes the per-instance high-water mark
/// — both deterministic, so the bench baseline pins them against drift.
struct BudgetSweepPoint {
  double budget_bytes = 0;
  double simulated_seconds = 0;
  long long disk_bytes = 0;
  long long peak_bytes = 0;
  // Data skipping (DESIGN.md §2.5): refuted batches and elided spill-run
  // re-reads. disk_bytes + skipped_spill_bytes is invariant under the
  // skipping switch, so the baseline pins both.
  long long skipped_batches = 0;
  long long skipped_spill_bytes = 0;
};

/// Runs the best-ranked plan of `fig` once per budget (restoring the
/// original execution options afterwards).
StatusOr<std::vector<BudgetSweepPoint>> RunBudgetSweep(
    FigureResult* fig, const std::vector<double>& budgets);

/// The default sweep the figure drivers record: effectively unbounded, then
/// squeezing the per-instance budget to 256 KB, 32 KB, and finally 8 KB —
/// the point at which even the best-ranked plan must spill.
std::vector<double> DefaultBudgetSweep();

/// Writes machine-readable results to BENCH_<name>.json in the working
/// directory (plan counts, estimated vs simulated seconds per picked rank,
/// disk/peak meters, the memory-budget sweep when `sweep` is non-null, and
/// — when `scaling` is non-null — real wall time at 1 and N threads).
/// CI runs this on every push so the perf trajectory is tracked.
Status WriteBenchJson(const std::string& name, const FigureResult& result,
                      const ThreadScaling* scaling = nullptr,
                      const std::vector<BudgetSweepPoint>* sweep = nullptr);

/// The figure drivers' shared tail: runs the default budget sweep of the
/// best plan, prints it, and writes BENCH_<base>[_budget<N>].json — the
/// suffix (when `mem_budget_flag` > 0, the driver's --mem-budget value)
/// keeps CI's spill-smoke JSON next to the default one.
Status WriteFigureJsonWithSweep(const std::string& base_name,
                                long long mem_budget_flag, FigureResult* fig,
                                const ThreadScaling* scaling = nullptr);

}  // namespace bench
}  // namespace blackbox

#endif  // BLACKBOX_BENCH_BENCH_UTIL_H_
