// Ablation study for the design choices DESIGN.md calls out:
//
//   A. Annotation provider — manual annotations vs. SCA vs. profiler-refined
//      hints: how much plan quality each knowledge source buys.
//   B. Physical optimizer features — broadcast joins and interesting-property
//      (partitioning) reuse, each switched off individually.
//   C. Sort-aware physical optimization — sort-order tracking (merge joins,
//      sort reuse) and combiner insertion, each switched off individually.
//      The combiner's headline effect is shuffled bytes: Q7's combiner plan
//      ships aggregated partials instead of the full join output.
//   D. Streaming data plane — fused operator chains vs --no-chain
//      (materialize-everything) execution of the same plan, plus the
//      pipeline-aware costing term switched off. The headline effect is
//      peak_bytes: fused peak memory is bounded by pipeline-breaker buffers
//      instead of every operator's output.
//
// For every configuration the harness optimizes, executes the chosen best
// plan, and reports estimated cost, simulated runtime, shuffle/spill bytes,
// and peak materialized bytes. All rows are also written to
// BENCH_ablation.json so CI tracks the feature contributions alongside the
// figure benchmarks.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/clickstream.h"
#include "workloads/textmining.h"
#include "workloads/tpch.h"

namespace {

using namespace blackbox;

struct Config {
  const char* name;
  const api::AnnotationProvider* provider = nullptr;  // null: SCA
  bool broadcast = true;
  bool reuse = true;
  bool sort_merge = true;
  bool combiner = true;
  bool chain_costing = true;  // pipeline-aware cost model (fused-edge term)
  bool fuse_chains = true;    // fused execution; false = --no-chain mode
  bool spill_costing = true;  // price breaker spills in the cost model; the
                              // engine spills (and meters) regardless
  bool data_skipping = true;  // zone-map refutation of batches / spill runs
  bool specialize = true;     // fused-chain TAC specialization (§2.6): Map
                              // chains execute as one constant-folded program
  double mem_budget_bytes = 1 << 20;  // per-instance budget (real spilling)
};

struct Row {
  std::string workload;
  std::string config;
  size_t plans = 0;
  double est_cost = 0;
  double simulated_seconds = 0;
  long long network_bytes = 0;
  long long disk_bytes = 0;
  long long peak_bytes = 0;
  int sort_merge_plans = 0;
  int combiner_plans = 0;
  long long skipped_batches = 0;
  long long skipped_spill_bytes = 0;
  long long interp_instructions = 0;
  long long fused_chains = 0;
};

/// Returns false if the configuration failed to optimize or execute, so
/// main can exit nonzero and CI's bench-smoke step catches the regression.
bool RunConfig(const workloads::Workload& w, const Config& cfg,
               std::vector<Row>* rows) {
  api::ScaProvider sca;
  const api::AnnotationProvider& provider =
      cfg.provider ? *cfg.provider : sca;

  api::OptimizeOptions options;
  // The ablation's `plans` column and strategy-mix counters quantify over
  // the FULL closure per feature config — use the exhaustive search, and
  // keep every row an independent optimization (configs that share a cache
  // key across workload repeats would alias).
  options.search = core::SearchMode::kClosure;
  options.use_plan_cache = false;
  options.exec.dop = 8;
  options.exec.mem_budget_bytes = cfg.mem_budget_bytes;
  options.exec.fuse_chains = cfg.fuse_chains;
  options.weights.enable_broadcast = cfg.broadcast;
  options.weights.enable_partition_reuse = cfg.reuse;
  options.weights.enable_sort_merge = cfg.sort_merge;
  options.weights.enable_combiner = cfg.combiner;
  options.weights.enable_chain_fusion = cfg.chain_costing;
  options.weights.enable_spill = cfg.spill_costing;
  options.weights.enable_data_skipping = cfg.data_skipping;
  options.weights.enable_chain_specialization = cfg.specialize;
  options.exec.enable_chain_specialization = cfg.specialize;

  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;

  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, provider, options, sources);
  if (!program.ok()) {
    std::fprintf(stderr, "optimize failed: %s\n",
                 program.status().ToString().c_str());
    return false;
  }

  engine::ExecStats stats;
  StatusOr<DataSet> out = program->RunBest(&stats);
  if (!out.ok()) {
    std::fprintf(stderr, "execute failed: %s\n",
                 out.status().ToString().c_str());
    return false;
  }
  bench::StrategyMix mix = bench::CountStrategyMix(*program);
  std::printf(
      "  %-28s %8zu plans   best est. cost %12.3g   runtime %7.3fs   "
      "shuffle %8.3f MB   disk %8.3f MB   peak %8.3f MB   skipped %8.3f MB   "
      "instrs %10lld\n",
      cfg.name, program->num_alternatives(), program->best().cost,
      stats.simulated_seconds,
      static_cast<double>(stats.network_bytes) / (1 << 20),
      static_cast<double>(stats.disk_bytes) / (1 << 20),
      static_cast<double>(stats.peak_bytes) / (1 << 20),
      static_cast<double>(stats.skipped_spill_bytes) / (1 << 20),
      static_cast<long long>(stats.interp_instructions));
  Row row;
  row.workload = w.name;
  row.config = cfg.name;
  row.plans = program->num_alternatives();
  row.est_cost = program->best().cost;
  row.simulated_seconds = stats.simulated_seconds;
  row.network_bytes = static_cast<long long>(stats.network_bytes);
  row.disk_bytes = static_cast<long long>(stats.disk_bytes);
  row.peak_bytes = static_cast<long long>(stats.peak_bytes);
  row.sort_merge_plans = mix.sort_merge_plans;
  row.combiner_plans = mix.combiner_plans;
  row.skipped_batches = static_cast<long long>(stats.skipped_batches);
  row.skipped_spill_bytes =
      static_cast<long long>(stats.skipped_spill_bytes);
  row.interp_instructions = static_cast<long long>(stats.interp_instructions);
  row.fused_chains = static_cast<long long>(stats.fused_chains);
  rows->push_back(std::move(row));
  return true;
}

Status WriteAblationJson(const std::vector<Row>& rows) {
  const char* path = "BENCH_ablation.json";
  std::FILE* f = std::fopen(path, "w");
  if (!f) return Status::Internal(std::string("cannot open ") + path);
  std::fprintf(f, "{\n  \"bench\": \"ablation\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"config\": \"%s\", "
                 "\"plans\": %zu, \"estimated_cost\": %.6f, "
                 "\"simulated_seconds\": %.6f, \"network_bytes\": %lld, "
                 "\"disk_bytes\": %lld, \"peak_bytes\": %lld, "
                 "\"sort_merge_plans\": %d, \"combiner_plans\": %d, "
                 "\"skipped_batches\": %lld, "
                 "\"skipped_spill_bytes\": %lld, "
                 "\"interp_instructions\": %lld, "
                 "\"fused_chains\": %lld}%s\n",
                 r.workload.c_str(), r.config.c_str(), r.plans, r.est_cost,
                 r.simulated_seconds, r.network_bytes, r.disk_bytes,
                 r.peak_bytes, r.sort_merge_plans, r.combiner_plans,
                 r.skipped_batches, r.skipped_spill_bytes,
                 r.interp_instructions, r.fused_chains,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return Status::OK();
}

}  // namespace

int main() {
  std::vector<Row> rows;
  bool ok = true;

  workloads::ClickstreamScale cs;
  cs.sessions = 20000;
  cs.users = 2000;
  workloads::Workload clicks = workloads::MakeClickstream(cs);

  api::ManualProvider manual;
  api::ScaProvider sca;
  // Discard the hand-written hints so the optimizer sees measured values
  // only — the "what if the author annotated nothing" configuration.
  api::ProfilerProvider profiled({.reset_hints = true});

  std::printf("Ablation A — annotation / hint provider (clickstream):\n");
  ok &= RunConfig(clicks, {.name = "manual annotations", .provider = &manual},
            &rows);
  ok &= RunConfig(clicks, {.name = "static code analysis", .provider = &sca},
            &rows);
  ok &= RunConfig(clicks, {.name = "SCA + profiled hints", .provider = &profiled},
            &rows);

  workloads::TpchScale ts;
  ts.lineitems = 60000;
  ts.orders = 15000;
  ts.customers = 1500;
  ts.suppliers = 100;
  workloads::Workload q7 = workloads::MakeTpchQ7(ts);

  std::printf("\nAblation B — physical optimizer features (TPC-H Q7, 5 joins):\n");
  ok &= RunConfig(q7, {.name = "full optimizer"}, &rows);
  ok &= RunConfig(q7, {.name = "no broadcast joins", .broadcast = false}, &rows);
  ok &= RunConfig(q7, {.name = "no partitioning reuse", .reuse = false}, &rows);
  ok &= RunConfig(
      q7, {.name = "no broadcast + no reuse", .broadcast = false, .reuse = false},
      &rows);

  std::printf(
      "\nAblation C — sort-awareness & combiner (TPC-H Q7, estimated cost "
      "and shuffle bytes):\n");
  ok &= RunConfig(q7, {.name = "sort-merge + combiner"}, &rows);
  ok &= RunConfig(q7, {.name = "no sort-merge", .sort_merge = false}, &rows);
  ok &= RunConfig(q7, {.name = "no combiner", .combiner = false}, &rows);
  ok &= RunConfig(
      q7,
      {.name = "no sort-merge + no combiner", .sort_merge = false,
       .combiner = false},
      &rows);

  std::printf("\nAblation C — sort-awareness & combiner (clickstream):\n");
  ok &= RunConfig(clicks,
            {.name = "sort-merge + combiner", .provider = &manual}, &rows);
  ok &= RunConfig(clicks,
            {.name = "no sort-merge", .provider = &manual,
             .sort_merge = false},
            &rows);
  ok &= RunConfig(clicks,
            {.name = "no combiner", .provider = &manual, .combiner = false},
            &rows);
  ok &= RunConfig(clicks,
                  {.name = "neither", .provider = &manual,
                   .sort_merge = false, .combiner = false},
                  &rows);

  std::printf(
      "\nAblation D — streaming data plane (fused chains vs --no-chain; "
      "peak MB is the acceptance meter):\n");
  ok &= RunConfig(q7, {.name = "q7 fused (default)"}, &rows);
  ok &= RunConfig(q7, {.name = "q7 no chaining", .fuse_chains = false}, &rows);
  ok &= RunConfig(q7,
                  {.name = "q7 no fusion costing", .chain_costing = false},
                  &rows);

  workloads::TextMiningScale tms;
  tms.documents = 3000;
  workloads::Workload text = workloads::MakeTextMining(tms);
  ok &= RunConfig(text, {.name = "textmining fused (default)"}, &rows);
  ok &= RunConfig(text, {.name = "textmining no chaining", .fuse_chains = false},
                  &rows);

  std::printf(
      "\nAblation E — spill costing under a tight budget (TPC-H Q7 at 64 KB "
      "per instance; disk MB is measured spill traffic):\n");
  ok &= RunConfig(
      q7, {.name = "spill-aware costing", .mem_budget_bytes = 64 << 10},
      &rows);
  ok &= RunConfig(q7,
                  {.name = "no spill costing", .spill_costing = false,
                   .mem_budget_bytes = 64 << 10},
                  &rows);

  std::printf(
      "\nAblation F — zone-map data skipping under a tight budget (TPC-H Q7 "
      "at 32 KB per instance; disk MB is measured spill traffic, skipping "
      "elides refuted spill-run re-reads):\n");
  ok &= RunConfig(
      q7, {.name = "data skipping", .mem_budget_bytes = 32 << 10}, &rows);
  ok &= RunConfig(q7,
                  {.name = "no data skipping", .data_skipping = false,
                   .mem_budget_bytes = 32 << 10},
                  &rows);

  std::printf(
      "\nAblation G — fused-chain TAC specialization (interp instructions "
      "and runtime; outputs are byte-identical by the differential "
      "contract):\n");
  ok &= RunConfig(text, {.name = "textmining specialized (default)"}, &rows);
  ok &= RunConfig(
      text, {.name = "textmining interpreted", .specialize = false}, &rows);
  ok &= RunConfig(q7, {.name = "q7 specialized (default)"}, &rows);
  ok &= RunConfig(q7, {.name = "q7 interpreted", .specialize = false}, &rows);

  Status json = WriteAblationJson(rows);
  if (!json.ok()) {
    std::fprintf(stderr, "error: %s\n", json.ToString().c_str());
    return 1;
  }
  return ok ? 0 : 1;
}
