// Ablation study for the design choices DESIGN.md calls out:
//
//   A. Annotation source — manual annotations vs. SCA vs. runtime-profiled
//      hints: how much plan quality each knowledge source buys.
//   B. Physical optimizer features — broadcast joins and interesting-property
//      (partitioning) reuse, each switched off individually.
//
// For every configuration the harness optimizes, executes the chosen best
// plan, and reports estimated cost and simulated runtime.

#include <cstdio>

#include "bench/bench_util.h"
#include "optimizer/profiler.h"
#include "workloads/clickstream.h"
#include "workloads/tpch.h"

namespace {

using namespace blackbox;

struct Config {
  const char* name;
  dataflow::AnnotationMode mode = dataflow::AnnotationMode::kSca;
  bool broadcast = true;
  bool reuse = true;
  bool profiled_hints = false;
};

void RunConfig(const workloads::Workload& base, const Config& cfg) {
  workloads::Workload w = base;  // copy (flows carry shared UDF pointers)
  if (cfg.profiled_hints) {
    for (int i = 0; i < w.flow.num_ops(); ++i) {
      w.flow.op(i).hints = dataflow::Hints();
    }
    std::map<int, const DataSet*> srcs;
    for (const auto& [id, data] : w.source_data) srcs[id] = &data;
    StatusOr<optimizer::FlowProfile> profile =
        optimizer::ProfileFlow(w.flow, srcs);
    if (!profile.ok()) {
      std::fprintf(stderr, "profiling failed: %s\n",
                   profile.status().ToString().c_str());
      return;
    }
    optimizer::ApplyProfile(*profile, &w.flow);
  }

  core::BlackBoxOptimizer::Options opts;
  opts.mode = cfg.mode;
  opts.weights.dop = 8;
  opts.weights.mem_budget_bytes = 1 << 20;
  opts.weights.enable_broadcast = cfg.broadcast;
  opts.weights.enable_partition_reuse = cfg.reuse;
  core::BlackBoxOptimizer optimizer(opts);
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(w.flow);
  if (!result.ok()) {
    std::fprintf(stderr, "optimize failed: %s\n",
                 result.status().ToString().c_str());
    return;
  }

  engine::ExecOptions eo;
  eo.dop = 8;
  eo.mem_budget_bytes = 1 << 20;
  engine::Executor exec(&result->annotated, eo);
  for (const auto& [src, data] : w.source_data) exec.BindSource(src, &data);
  engine::ExecStats stats;
  StatusOr<DataSet> out = exec.Execute(result->best().physical, &stats);
  if (!out.ok()) {
    std::fprintf(stderr, "execute failed: %s\n",
                 out.status().ToString().c_str());
    return;
  }
  std::printf("  %-28s %8zu plans   best est. cost %12.3g   runtime %7.3fs\n",
              cfg.name, result->num_alternatives, result->best().cost,
              stats.simulated_seconds);
}

}  // namespace

int main() {
  workloads::ClickstreamScale cs;
  cs.sessions = 20000;
  cs.users = 2000;
  workloads::Workload clicks = workloads::MakeClickstream(cs);

  std::printf("Ablation A — annotation / hint source (clickstream):\n");
  RunConfig(clicks, {.name = "manual annotations",
                     .mode = dataflow::AnnotationMode::kManual});
  RunConfig(clicks, {.name = "static code analysis",
                     .mode = dataflow::AnnotationMode::kSca});
  RunConfig(clicks, {.name = "SCA + profiled hints",
                     .mode = dataflow::AnnotationMode::kSca,
                     .profiled_hints = true});

  workloads::TpchScale ts;
  ts.lineitems = 60000;
  ts.orders = 15000;
  ts.customers = 1500;
  ts.suppliers = 100;
  workloads::Workload q7 = workloads::MakeTpchQ7(ts);

  std::printf("\nAblation B — physical optimizer features (TPC-H Q7, 5 joins):\n");
  RunConfig(q7, {.name = "full optimizer"});
  RunConfig(q7, {.name = "no broadcast joins", .broadcast = false});
  RunConfig(q7, {.name = "no partitioning reuse", .reuse = false});
  RunConfig(q7, {.name = "neither", .broadcast = false, .reuse = false});
  return 0;
}
