// Ablation study for the design choices DESIGN.md calls out:
//
//   A. Annotation provider — manual annotations vs. SCA vs. profiler-refined
//      hints: how much plan quality each knowledge source buys.
//   B. Physical optimizer features — broadcast joins and interesting-property
//      (partitioning) reuse, each switched off individually.
//
// For every configuration the harness optimizes, executes the chosen best
// plan, and reports estimated cost and simulated runtime.

#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/clickstream.h"
#include "workloads/tpch.h"

namespace {

using namespace blackbox;

struct Config {
  const char* name;
  const api::AnnotationProvider* provider = nullptr;  // null: SCA
  bool broadcast = true;
  bool reuse = true;
};

void RunConfig(const workloads::Workload& w, const Config& cfg) {
  api::ScaProvider sca;
  const api::AnnotationProvider& provider =
      cfg.provider ? *cfg.provider : sca;

  api::OptimizeOptions options;
  options.exec.dop = 8;
  options.exec.mem_budget_bytes = 1 << 20;
  options.weights.enable_broadcast = cfg.broadcast;
  options.weights.enable_partition_reuse = cfg.reuse;

  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;

  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, provider, options, sources);
  if (!program.ok()) {
    std::fprintf(stderr, "optimize failed: %s\n",
                 program.status().ToString().c_str());
    return;
  }

  engine::ExecStats stats;
  StatusOr<DataSet> out = program->RunBest(&stats);
  if (!out.ok()) {
    std::fprintf(stderr, "execute failed: %s\n",
                 out.status().ToString().c_str());
    return;
  }
  std::printf("  %-28s %8zu plans   best est. cost %12.3g   runtime %7.3fs\n",
              cfg.name, program->num_alternatives(), program->best().cost,
              stats.simulated_seconds);
}

}  // namespace

int main() {
  workloads::ClickstreamScale cs;
  cs.sessions = 20000;
  cs.users = 2000;
  workloads::Workload clicks = workloads::MakeClickstream(cs);

  api::ManualProvider manual;
  api::ScaProvider sca;
  // Discard the hand-written hints so the optimizer sees measured values
  // only — the "what if the author annotated nothing" configuration.
  api::ProfilerProvider profiled({.reset_hints = true});

  std::printf("Ablation A — annotation / hint provider (clickstream):\n");
  RunConfig(clicks, {.name = "manual annotations", .provider = &manual});
  RunConfig(clicks, {.name = "static code analysis", .provider = &sca});
  RunConfig(clicks, {.name = "SCA + profiled hints", .provider = &profiled});

  workloads::TpchScale ts;
  ts.lineitems = 60000;
  ts.orders = 15000;
  ts.customers = 1500;
  ts.suppliers = 100;
  workloads::Workload q7 = workloads::MakeTpchQ7(ts);

  std::printf("\nAblation B — physical optimizer features (TPC-H Q7, 5 joins):\n");
  RunConfig(q7, {.name = "full optimizer"});
  RunConfig(q7, {.name = "no broadcast joins", .broadcast = false});
  RunConfig(q7, {.name = "no partitioning reuse", .reuse = false});
  RunConfig(q7, {.name = "neither", .broadcast = false, .reuse = false});
  return 0;
}
