// §7.3 "Plan Enumeration Space" — TPC-H Q15: the aggregation push-up rewrite
// (exchange of Match and Reduce via invariant grouping) and the physical
// strategy flip it causes:
//
//  * Reduce below Match (Figure 3a): partition lineitems for the Reduce, the
//    Match reuses that partitioning (forward) and probes suppliers into it.
//  * Match below Reduce (Figure 3b): the unaggregated lineitem side is large,
//    so the optimizer broadcasts the small supplier side instead.
//
// Prints all enumerated orders, their physical strategies, estimated costs,
// and measured runtimes.

#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/tpch.h"

int main() {
  using namespace blackbox;

  workloads::TpchScale scale;
  scale.lineitems = 120000;
  scale.suppliers = 150;
  workloads::Workload w = workloads::MakeTpchQ15(scale);

  bench::BenchConfig config;
  config.picks = 16;
  config.reps = 3;
  StatusOr<bench::FigureResult> fig = bench::RunRankedFigure(w, config);
  if (!fig.ok()) {
    std::fprintf(stderr, "error: %s\n", fig.status().ToString().c_str());
    return 1;
  }
  bench::PrintFigure(
      "TPC-H Q15 — all enumerated orders (paper: 4 plans; aggregation "
      "push-up / invariant grouping)",
      *fig);

  for (const auto& alt : fig->program.ranked()) {
    std::printf("---- rank %d (est. cost %.3g) ----\n%s\n", alt.rank,
                alt.cost, alt.physical.ToString(w.flow).c_str());
  }
  return 0;
}
