// Figure 7: normalized cost estimates and execution runtimes for ALL four
// execution plans of the clickstream task (manual annotations). The paper's
// findings: the optimizer pushes the selective "filter logged-in sessions"
// join below both non-relational Reduce operators; the best plan beats the
// implemented flow (rank 3) by a factor of ~1.4.
//
// Also prints Figure 4: implemented vs. 1st-ranked data flow.
//
// Flags: --mem-budget N  per-instance memory budget in bytes (real spilling
//                        below it, DESIGN.md §2.3); the JSON name gains a
//                        _budgetN suffix for CI's spill-smoke run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "workloads/clickstream.h"

int main(int argc, char** argv) {
  using namespace blackbox;

  long long mem_budget = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mem-budget") == 0 && i + 1 < argc) {
      mem_budget = std::atoll(argv[++i]);
    }
  }

  workloads::ClickstreamScale scale;
  scale.sessions = 20000;
  scale.avg_clicks_per_session = 10;
  scale.users = 2000;
  workloads::Workload w = workloads::MakeClickstream(scale);

  api::ManualProvider manual;
  bench::BenchConfig config;
  config.provider = &manual;
  config.picks = 4;
  config.reps = 3;
  if (mem_budget > 0) {
    config.exec.mem_budget_bytes = static_cast<double>(mem_budget);
  }
  StatusOr<bench::FigureResult> fig = bench::RunRankedFigure(w, config);
  if (!fig.ok()) {
    std::fprintf(stderr, "error: %s\n", fig.status().ToString().c_str());
    return 1;
  }
  bench::PrintFigure(
      "Figure 7 — clickstream: normalized cost estimate vs. execution "
      "runtime (all 4 plans)",
      *fig);

  Status json =
      bench::WriteFigureJsonWithSweep("fig7_clickstream", mem_budget, &*fig);
  if (!json.ok()) {
    std::fprintf(stderr, "error: %s\n", json.ToString().c_str());
    return 1;
  }

  int implemented = bench::ImplementedRank(fig->program);
  double speedup = 0;
  for (const bench::RankedRun& r : fig->runs) {
    if (r.rank == implemented) speedup = r.norm_runtime;
  }
  std::printf("implemented flow rank: %d (paper: 3); best beats it by %.2fx "
              "(paper: 1.4x)\n\n",
              implemented, speedup);

  std::printf("Figure 4(a) — implemented data flow:\n%s\n",
              reorder::PlanToString(reorder::PlanFromFlow(w.flow), w.flow)
                  .c_str());
  std::printf("Figure 4(b) — 1st-ranked data flow:\n%s\n",
              reorder::PlanToString(fig->program.ranked()[0].logical,
                                    w.flow)
                  .c_str());
  return 0;
}
