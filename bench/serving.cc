// Open-loop serving benchmark (DESIGN.md §2.4): optimizes the three seed
// workloads once, then drives a QueryServer with arrival-rate-driven
// clients — one submitter per workload class that submits on a fixed
// schedule WITHOUT waiting for results, the way real load arrives. Because
// arrivals do not slow down when the server does, queueing genuinely builds
// and the per-class latency percentiles separate: clickstream runs as the
// "short" class at elevated worker-pool priority and the fastest arrival
// rate, tpch_q7 as the heavy "scan" class at the slowest.
//
// Every request carries a per-class deadline (generous enough never to fire
// under healthy CI timing), and two deterministic probes exercise the
// cancellation machinery on every run:
//   - a cancel probe that fires its token inside its first spill write
//     (ExecOptions::cancel_after_spill_bytes), unwinding mid-execution;
//   - a deadline probe submitted with an already-expired deadline, culled
//     at admission before it carves budget.
//
// The run verifies the serving invariants end to end and exits non-zero if
// any fails:
//   - zero ledger violations: the global BudgetPool's measured live
//     high-water never exceeded its capacity under concurrent spill load;
//   - byte-identical outputs: every completed result equals the solo
//     (unserved, private-pool) execution of the same plan;
//   - exact lifecycle accounting: all non-probe queries complete, the
//     cancel probe is counted cancelled, the deadline probe counted
//     deadline_exceeded, the oversized probe rejected, none failed.
//
// Writes BENCH_serving.json: admission + cancellation counters, ledger
// accounting, per-class wall-clock latency percentiles (p50/p99 — real
// time, unlike the engine's thread-invariant simulated_seconds, reported
// per solo run next to them), and the deterministic solo meters.
//
// Flags: --smoke        reduced scale + fewer queries (the CI smoke config)
//        --inflight N   max concurrently executing queries (default 4)
//        --threads N    shared worker-pool threads (default 8)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/annotation_provider.h"
#include "api/optimized_program.h"
#include "record/spill_file.h"
#include "serve/query_server.h"
#include "workloads/clickstream.h"
#include "workloads/textmining.h"
#include "workloads/tpch.h"
#include "workloads/workload.h"

namespace {

using namespace blackbox;

struct ServedWorkload {
  std::string name;            // workload name, for the JSON
  std::string tenant;          // fair-share identity
  std::string workload_class;  // metrics bucket
  int priority = 0;            // worker-pool priority
  std::chrono::milliseconds interarrival{0};  // open-loop submit gap
  std::chrono::seconds deadline{0};           // per-class deadline budget
  workloads::Workload workload;
  api::OptimizedProgram program;
  std::string solo_bytes;          // encoded solo output, the oracle
  engine::ExecStats solo_stats;    // deterministic meters for the JSON
  double solo_wall_seconds = 0;    // solo wall time, for context only
};

// Encodes a DataSet in record order; the engine's determinism contract
// makes this byte-comparable across runs of the same plan.
std::string EncodeOutput(const DataSet& data) {
  std::string bytes;
  for (size_t i = 0; i < data.size(); ++i) EncodeRecord(data.record(i), &bytes);
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int max_inflight = 4;
  int num_threads = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--inflight") == 0 && i + 1 < argc) {
      max_inflight = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      num_threads = std::atoi(argv[++i]);
    }
  }

  // Per-query execution options: dop 8 at an 8 KB per-instance budget —
  // the squeeze point of the figure benches' budget sweep, where even the
  // best-ranked plans spill for real, so the ledger hierarchy is exercised
  // under genuine concurrent spill traffic, not just accounted.
  engine::ExecOptions exec;
  exec.dop = 8;
  exec.mem_budget_bytes = 8.0 * 1024;

  serve::ServeOptions serve_options;
  serve_options.max_inflight = max_inflight;
  serve_options.max_queued = 64;
  serve_options.num_threads = num_threads;
  serve_options.per_instance_slack_bytes = 16.0 * 1024;
  // Room for exactly max_inflight worst-case carves plus one probe's
  // worth of headroom: admission is slot-limited, never budget-starved.
  const double carve =
      exec.dop * (exec.mem_budget_bytes + serve_options.per_instance_slack_bytes);
  serve_options.global_budget_bytes = carve * (max_inflight + 1);

  // --- Build and optimize the three seed workloads once ------------------
  workloads::TpchScale tpch;
  workloads::TextMiningScale mining;
  workloads::ClickstreamScale click;
  if (smoke) {
    tpch.lineitems = 1200;
    tpch.orders = 300;
    tpch.customers = 60;
    tpch.suppliers = 12;
    tpch.nations = 8;
    mining.documents = 500;
    click.sessions = 600;
    click.users = 80;
  } else {
    tpch.lineitems = 12000;
    tpch.orders = 3000;
    tpch.customers = 300;
    tpch.suppliers = 50;
    mining.documents = 2000;
    click.sessions = 2000;
    click.users = 300;
  }

  // Open-loop arrival schedule: the short class arrives fastest (so its
  // queue pressure is real), the heavy scan class slowest. The deadlines
  // are per-class budgets generous enough never to fire under healthy
  // timing — they exercise the deadline plumbing on every request, while
  // the probes below exercise the firing paths deterministically.
  std::vector<ServedWorkload> served(3);
  served[0].name = "tpch_q7";
  served[0].tenant = "analytics";
  served[0].workload_class = "scan";
  served[0].interarrival = std::chrono::milliseconds(50);
  served[0].deadline = std::chrono::seconds(300);
  served[0].workload = workloads::MakeTpchQ7(tpch);
  served[1].name = "textmining";
  served[1].tenant = "mining";
  served[1].workload_class = "mine";
  served[1].interarrival = std::chrono::milliseconds(25);
  served[1].deadline = std::chrono::seconds(300);
  served[1].workload = workloads::MakeTextMining(mining);
  served[2].name = "clickstream";
  served[2].tenant = "web";
  served[2].workload_class = "short";
  served[2].priority = 1;  // short interactive class jumps the pool queue
  served[2].interarrival = std::chrono::milliseconds(10);
  served[2].deadline = std::chrono::seconds(120);
  served[2].workload = workloads::MakeClickstream(click);

  api::ScaProvider provider;
  for (ServedWorkload& s : served) {
    api::OptimizeOptions options;
    options.exec = exec;
    options.exec.num_threads = num_threads;
    api::SourceBindings sources;
    for (const auto& [id, data] : s.workload.source_data) {
      sources[id] = &data;
    }
    StatusOr<api::OptimizedProgram> program =
        api::OptimizeFlow(s.workload.flow, provider, options, sources);
    if (!program.ok()) {
      std::fprintf(stderr, "optimize %s: %s\n", s.name.c_str(),
                   program.status().ToString().c_str());
      return 1;
    }
    s.program = std::move(program).value();

    // Solo reference: the same best plan, same per-query options, private
    // pool, no parent ledger — the oracle every served output must match.
    auto solo_start = std::chrono::steady_clock::now();
    StatusOr<DataSet> solo = s.program.RunWith(0, exec, &s.solo_stats);
    if (!solo.ok()) {
      std::fprintf(stderr, "solo run %s: %s\n", s.name.c_str(),
                   solo.status().ToString().c_str());
      return 1;
    }
    s.solo_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      solo_start)
            .count();
    s.solo_bytes = EncodeOutput(*solo);
    std::printf("%-12s  %zu ranked plans, solo output %zu rows, "
                "disk %lld B, peak %lld B\n",
                s.name.c_str(), s.program.ranked().size(), solo->size(),
                static_cast<long long>(s.solo_stats.disk_bytes),
                static_cast<long long>(s.solo_stats.peak_bytes));
  }

  // --- Open-loop serving ---------------------------------------------------
  const int queries_per_class = smoke ? 6 : 12;

  serve::QueryServer server(serve_options);
  std::atomic<int> mismatches{0};

  // One submitter thread per class: submit on the arrival schedule without
  // waiting (open loop), collect handles, then wait and byte-check at the
  // end. Submission never blocks on execution, so a slow server means a
  // deep queue — exactly the regime where per-class p99 separates.
  std::vector<std::thread> submitters;
  for (const ServedWorkload& s : served) {
    submitters.emplace_back([&server, &s, &mismatches, &exec,
                             queries_per_class] {
      std::vector<std::shared_ptr<serve::QueryHandle>> handles;
      const auto t0 = std::chrono::steady_clock::now();
      for (int k = 0; k < queries_per_class; ++k) {
        std::this_thread::sleep_until(t0 + k * s.interarrival);
        serve::QueryRequest request;
        request.program = &s.program;
        request.plan_index = 0;
        request.tenant = s.tenant;
        request.workload_class = s.workload_class;
        request.priority = s.priority;
        request.deadline = std::chrono::steady_clock::now() + s.deadline;
        request.exec = exec;
        StatusOr<std::shared_ptr<serve::QueryHandle>> handle =
            server.Submit(std::move(request));
        if (!handle.ok()) {
          std::fprintf(stderr, "submit %s: %s\n", s.name.c_str(),
                       handle.status().ToString().c_str());
          mismatches.fetch_add(1);
          continue;
        }
        handles.push_back(std::move(handle).value());
      }
      for (const std::shared_ptr<serve::QueryHandle>& h : handles) {
        const serve::QueryResult& result = h->Wait();
        if (!result.status.ok()) {
          std::fprintf(stderr, "query %llu (%s): %s\n",
                       static_cast<unsigned long long>(result.query_id),
                       s.name.c_str(), result.status.ToString().c_str());
          mismatches.fetch_add(1);
          continue;
        }
        if (EncodeOutput(result.output) != s.solo_bytes) {
          std::fprintf(stderr,
                       "query %llu (%s): served output differs from the "
                       "solo run\n",
                       static_cast<unsigned long long>(result.query_id),
                       s.name.c_str());
          mismatches.fetch_add(1);
        }
      }
    });
  }

  // Deterministic cancellation probes, submitted while the open-loop load
  // is in flight so the unwind happens next to healthy neighbors.
  // Probe 1: cancelled mid-spill — the token fires inside the first spill
  // write, so this query always unwinds from deep in execution.
  serve::QueryRequest cancel_probe;
  cancel_probe.program = &served[2].program;
  cancel_probe.tenant = "probe";
  cancel_probe.workload_class = "probe";
  cancel_probe.exec = exec;
  cancel_probe.exec.cancel_after_spill_bytes = 1;
  StatusOr<std::shared_ptr<serve::QueryHandle>> cancel_handle =
      server.Submit(std::move(cancel_probe));
  // Probe 2: deadline already expired at submit — culled at admission,
  // never carves budget.
  serve::QueryRequest deadline_probe;
  deadline_probe.program = &served[2].program;
  deadline_probe.tenant = "probe";
  deadline_probe.workload_class = "probe";
  deadline_probe.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  deadline_probe.exec = exec;
  StatusOr<std::shared_ptr<serve::QueryHandle>> deadline_handle =
      server.Submit(std::move(deadline_probe));

  bool probes_ok = true;
  if (!cancel_handle.ok() ||
      (*cancel_handle)->Wait().status.code() != Status::Code::kCancelled) {
    std::fprintf(stderr, "cancel probe did not return Cancelled\n");
    probes_ok = false;
  }
  if (!deadline_handle.ok() ||
      (*deadline_handle)->Wait().status.code() !=
          Status::Code::kDeadlineExceeded) {
    std::fprintf(stderr, "deadline probe did not return DeadlineExceeded\n");
    probes_ok = false;
  }

  for (std::thread& t : submitters) t.join();
  server.Drain();

  // One deliberately oversized probe after the load: its carve cannot fit
  // the global budget, so it must be rejected cleanly — the admission-
  // rejection path stays exercised (and counted) on every bench run. The
  // probe is oversized via dop: the estimate-sized carve can shrink a
  // query's per-instance budget, but never below the floor, so a huge dop
  // still overflows the pool.
  {
    serve::QueryRequest probe;
    probe.program = &served[0].program;
    probe.tenant = "probe";
    probe.exec = exec;
    probe.exec.dop = 4096;
    probe.exec.mem_budget_bytes = serve_options.global_budget_bytes;
    StatusOr<std::shared_ptr<serve::QueryHandle>> handle =
        server.Submit(std::move(probe));
    if (handle.ok()) {
      std::fprintf(stderr, "oversized probe was admitted — admission "
                           "control is broken\n");
      return 1;
    }
  }

  const serve::MetricsSnapshot metrics = server.metrics().Snapshot();
  const engine::BudgetPool& pool = server.budget_pool();
  const int expected =
      static_cast<int>(served.size()) * queries_per_class;

  std::printf("\nserving (open loop): %d queries + 3 probes, max_inflight "
              "%d, %d pool threads\n",
              expected, max_inflight, num_threads);
  std::printf("counters: submitted %lld admitted %lld completed %lld "
              "failed %lld cancelled %lld deadline_exceeded %lld "
              "rejected %lld queue_hw %zu plan_cache %lld/%lld\n",
              static_cast<long long>(metrics.submitted),
              static_cast<long long>(metrics.admitted),
              static_cast<long long>(metrics.completed),
              static_cast<long long>(metrics.failed),
              static_cast<long long>(metrics.cancelled),
              static_cast<long long>(metrics.deadline_exceeded),
              static_cast<long long>(metrics.rejected),
              metrics.queue_high_water,
              static_cast<long long>(metrics.plan_cache_hits),
              static_cast<long long>(metrics.plan_cache_misses));
  std::printf("ledger: capacity %.0f carved_hw %.0f live_hw %lld "
              "violations %lld\n",
              pool.capacity_bytes(), pool.carved_high_water(),
              static_cast<long long>(pool.live_high_water()),
              static_cast<long long>(pool.violations()));
  for (const auto& [cls, lat] : metrics.total_latency) {
    std::printf("class %-8s n=%zu  p50 %.3fs  p99 %.3fs  mean %.3fs  "
                "max %.3fs\n",
                cls.c_str(), lat.count, lat.p50, lat.p99, lat.mean, lat.max);
  }

  bool ok = mismatches.load() == 0 && pool.violations() == 0 &&
            metrics.completed == expected && metrics.failed == 0 &&
            metrics.cancelled == 1 && metrics.deadline_exceeded == 1 &&
            probes_ok;

  // --- BENCH_serving.json --------------------------------------------------
  std::FILE* f = std::fopen("BENCH_serving.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_serving.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serving\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"open_loop\": true,\n");
  std::fprintf(f, "  \"queries_per_class\": %d,\n", queries_per_class);
  std::fprintf(f, "  \"max_inflight\": %d,\n", max_inflight);
  std::fprintf(f, "  \"pool_threads\": %d,\n", num_threads);
  std::fprintf(f, "  \"dop\": %d,\n", exec.dop);
  std::fprintf(f, "  \"per_query_budget_bytes\": %.0f,\n",
               exec.mem_budget_bytes);
  std::fprintf(f, "  \"global_budget_bytes\": %.0f,\n",
               serve_options.global_budget_bytes);
  std::fprintf(f, "  \"counters\": {\n");
  std::fprintf(f, "    \"submitted\": %lld,\n",
               static_cast<long long>(metrics.submitted));
  std::fprintf(f, "    \"admitted\": %lld,\n",
               static_cast<long long>(metrics.admitted));
  std::fprintf(f, "    \"completed\": %lld,\n",
               static_cast<long long>(metrics.completed));
  std::fprintf(f, "    \"failed\": %lld,\n",
               static_cast<long long>(metrics.failed));
  std::fprintf(f, "    \"cancelled\": %lld,\n",
               static_cast<long long>(metrics.cancelled));
  std::fprintf(f, "    \"deadline_exceeded\": %lld,\n",
               static_cast<long long>(metrics.deadline_exceeded));
  std::fprintf(f, "    \"rejected\": %lld,\n",
               static_cast<long long>(metrics.rejected));
  std::fprintf(f, "    \"queue_high_water\": %zu,\n",
               metrics.queue_high_water);
  std::fprintf(f, "    \"plan_cache_hits\": %lld,\n",
               static_cast<long long>(metrics.plan_cache_hits));
  std::fprintf(f, "    \"plan_cache_misses\": %lld\n",
               static_cast<long long>(metrics.plan_cache_misses));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"ledger\": {\n");
  std::fprintf(f, "    \"capacity_bytes\": %.0f,\n", pool.capacity_bytes());
  std::fprintf(f, "    \"carved_high_water_bytes\": %.0f,\n",
               pool.carved_high_water());
  std::fprintf(f, "    \"live_high_water_bytes\": %lld,\n",
               static_cast<long long>(pool.live_high_water()));
  std::fprintf(f, "    \"ledger_violations\": %lld\n",
               static_cast<long long>(pool.violations()));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"outputs_match\": %s,\n",
               mismatches.load() == 0 ? "true" : "false");
  std::fprintf(f, "  \"classes\": [\n");
  {
    size_t i = 0;
    for (const auto& [cls, lat] : metrics.total_latency) {
      const serve::LatencySummary& ex = metrics.exec_latency.at(cls);
      std::fprintf(f,
                   "    {\"class\": \"%s\", \"count\": %zu, "
                   "\"p50_s\": %.6f, \"p99_s\": %.6f, \"mean_s\": %.6f, "
                   "\"max_s\": %.6f, \"exec_p50_s\": %.6f, "
                   "\"exec_p99_s\": %.6f}%s\n",
                   cls.c_str(), lat.count, lat.p50, lat.p99, lat.mean,
                   lat.max, ex.p50, ex.p99,
                   ++i < metrics.total_latency.size() ? "," : "");
    }
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"solo\": [\n");
  for (size_t i = 0; i < served.size(); ++i) {
    const ServedWorkload& s = served[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"class\": \"%s\", "
                 "\"simulated_seconds\": %.6f, \"disk_bytes\": %lld, "
                 "\"peak_bytes\": %lld, \"wall_seconds\": %.6f}%s\n",
                 s.name.c_str(), s.workload_class.c_str(),
                 s.solo_stats.simulated_seconds,
                 static_cast<long long>(s.solo_stats.disk_bytes),
                 static_cast<long long>(s.solo_stats.peak_bytes),
                 s.solo_wall_seconds, i + 1 < served.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"ok\": %s\n", ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);

  if (!ok) {
    std::fprintf(stderr, "serving bench FAILED (mismatches=%d "
                         "violations=%lld completed=%lld/%d failed=%lld "
                         "cancelled=%lld deadline_exceeded=%lld)\n",
                 mismatches.load(),
                 static_cast<long long>(pool.violations()),
                 static_cast<long long>(metrics.completed), expected,
                 static_cast<long long>(metrics.failed),
                 static_cast<long long>(metrics.cancelled),
                 static_cast<long long>(metrics.deadline_exceeded));
    return 1;
  }
  std::printf("serving bench OK — wrote BENCH_serving.json\n");
  return 0;
}
